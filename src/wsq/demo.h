#ifndef WSQ_WSQ_DEMO_H_
#define WSQ_WSQ_DEMO_H_

#include <memory>

#include "data/datasets.h"
#include "net/result_cache.h"
#include "net/sharded_service.h"
#include "net/simulated_service.h"
#include "search/search_engine.h"
#include "wsq/database.h"

namespace wsq {

struct DemoOptions {
  /// Synthetic Web size and seed.
  CorpusConfig corpus = DefaultPaperCorpusConfig();
  /// Simulated search latency for both engines.
  LatencyModel latency = LatencyModel{40000, 10000, 0.0, 1.0};
  /// Server-side concurrency capacity (0 = unbounded).
  size_t server_capacity = 0;
  /// Attach a client-side result cache of this many entries (0 = none).
  size_t client_cache_entries = 0;
  /// Byte bound for the client cache (0 = entry bound only). The cache
  /// is also attached to the database memory budget, so it sheds under
  /// process-wide pressure (tier 2).
  size_t client_cache_bytes = 0;
  /// Database-wide memory budget (0 = unlimited); see
  /// WsqDatabase::Options::memory_budget_bytes.
  size_t memory_budget_bytes = 0;
  /// ReqPump concurrency limits.
  ReqPump::Limits pump_limits;
  /// Overload admission control for the database (default: off).
  AdmissionLimits admission;
  /// Partition the AltaVista backend into this many simulated shards
  /// behind a ShardedSearchService (0 = the paper's unsharded setup).
  /// Per-query ExecOptions::shard then picks the partial-result policy.
  size_t search_shards = 0;
  /// Give each shard a replica node (enables hedged requests). Only
  /// meaningful when search_shards > 0.
  bool shard_replicas = true;
  /// Seeded fault plans applied per shard (index < search_shards;
  /// missing entries mean no injected faults). Only meaningful when
  /// search_shards > 0.
  std::vector<FaultPlan> shard_faults;
  /// Forwarded to WsqDatabase::Options: capture postmortem records
  /// instead of the default stderr line (chaos tests do this).
  PostmortemLog::Sink postmortem_sink;
  int64_t postmortem_min_interval_micros = 0;
  uint64_t seed = 42;
};

/// A ready-to-use WSQ deployment matching the paper's setup (Figure 1):
/// one synthetic Web, two search engines over it — "AltaVista" (NEAR
/// support) and "Google" (plain conjunction, different ranking salt) —
/// simulated network services, and a WsqDatabase preloaded with the
/// paper's stored tables: States, Sigs, CSFields, Movies.
///
/// Virtual tables registered: WebCount/WebPages (AltaVista, the default
/// engine), WebCount_AV/WebPages_AV, WebCount_Google/WebPages_Google.
class DemoEnv {
 public:
  explicit DemoEnv(const DemoOptions& options = DemoOptions());

  /// Detaches the client cache from the database budget before the
  /// database (and its budget) is destroyed; see member order below.
  ~DemoEnv();

  WsqDatabase& db() { return *db_; }
  const Corpus& corpus() const { return *corpus_; }
  SimulatedSearchService& altavista_service() { return *av_service_; }
  SimulatedSearchService& google_service() { return *google_service_; }
  const SearchEngine& altavista_engine() const { return *av_engine_; }
  const SearchEngine& google_engine() const { return *google_engine_; }
  ResultCache* client_cache() { return client_cache_.get(); }
  /// Non-null when DemoOptions::search_shards > 0.
  SimulatedShardCluster* shard_cluster() { return shard_cluster_.get(); }

  /// Convenience: Execute and fail loudly in tests/examples.
  Result<QueryExecution> Run(const std::string& sql,
                             bool async_iteration = true);

 private:
  // Declaration order is destruction-order-critical: the database's
  // ReqPump must be destroyed (draining in-flight calls) while the
  // services that complete those calls are still alive.
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<SearchEngine> av_engine_;
  std::unique_ptr<SearchEngine> google_engine_;
  std::unique_ptr<SimulatedSearchService> av_service_;
  std::unique_ptr<SimulatedSearchService> google_service_;
  std::unique_ptr<SimulatedShardCluster> shard_cluster_;
  std::unique_ptr<ResultCache> client_cache_;
  std::unique_ptr<CachingSearchService> av_cached_;
  std::unique_ptr<CachingSearchService> google_cached_;
  std::unique_ptr<WsqDatabase> db_;
};

/// Loads the paper's stored tables into any database.
Status LoadStatesTable(WsqDatabase* db);
Status LoadSigsTable(WsqDatabase* db);
Status LoadCsFieldsTable(WsqDatabase* db);
Status LoadMoviesTable(WsqDatabase* db);

}  // namespace wsq

#endif  // WSQ_WSQ_DEMO_H_
