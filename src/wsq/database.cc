#include "wsq/database.h"

#include <atomic>

#include "catalog/catalog_serde.h"
#include "plan/cost_model.h"
#include "common/strings.h"
#include "storage/serde.h"
#include "common/clock.h"
#include "common/macros.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "parser/parser.h"
#include "wsq/web_tables.h"

namespace wsq {

namespace {

/// Process-unique query ids: one sequence across every open database,
/// so slow-query lines and traces from different databases never
/// collide in a shared log.
std::atomic<uint64_t> g_next_query_id{1};

}  // namespace

WsqDatabase::WsqDatabase(const Options& options,
                         std::unique_ptr<DiskManager> owned_disk,
                         DiskManager* disk,
                         std::unique_ptr<WalStorage> owned_wal,
                         WalStorage* wal, bool persistent)
    : options_(options),
      owned_disk_(std::move(owned_disk)),
      // A null `disk` means "use the owned one" (the in-memory ctor
      // cannot name the unique_ptr it is passing before it exists).
      disk_(disk != nullptr ? disk : owned_disk_.get()),
      owned_wal_(std::move(owned_wal)),
      wal_(wal != nullptr ? wal : owned_wal_.get()),
      persistent_(persistent),
      memory_budget_("db", options.memory_budget_bytes,
                     MemoryBudget::Process()),
      buffer_pool_(options.buffer_pool_pages, disk_),
      catalog_(&buffer_pool_),
      pump_(options.pump_limits),
      admission_(options.admission),
      slow_query_log_(options.slow_query_micros,
                      options.slow_query_sink),
      postmortem_log_(options.postmortem_min_interval_micros,
                      options.postmortem_sink, /*clock=*/nullptr,
                      options.postmortem_max_events) {
  // Tier 2 wiring: resident pages are charged to the database budget,
  // and a pressure hook sheds clean pages when any reservation fails.
  buffer_pool_.AttachBudget(&memory_budget_);
  if (options.enable_spill) {
    SpillManager::Options spill_options;
    spill_options.dir = options.spill_dir;
    spill_ = std::make_unique<SpillManager>(spill_options);
  }
  mem_collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        auto emit = [emitter](MemoryBudget* b) {
          MetricLabels labels{{"budget", b->name()}};
          emitter->EmitGauge("wsq_mem_used_bytes",
                             "Bytes currently reserved", labels,
                             static_cast<int64_t>(b->used()));
          emitter->EmitGauge("wsq_mem_limit_bytes",
                             "Budget limit (0 = unlimited)", labels,
                             static_cast<int64_t>(b->limit()));
          emitter->EmitGauge("wsq_mem_peak_used_bytes",
                             "High-water mark of reserved bytes", labels,
                             static_cast<int64_t>(b->peak_used()));
          MemoryBudgetStats s = b->stats();
          emitter->EmitCounter("wsq_mem_reserve_failures_total",
                               "Reservations refused at this budget",
                               labels, s.reserve_failures);
          emitter->EmitCounter(
              "wsq_mem_pressure_invocations_total",
              "Pressure-hook sweeps run at this budget", labels,
              s.pressure_invocations);
          emitter->EmitCounter(
              "wsq_mem_pressure_released_bytes_total",
              "Bytes freed by pressure hooks at this budget", labels,
              s.pressure_released_bytes);
          emitter->EmitCounter(
              "wsq_mem_forced_overages_total",
              "ForceReserve charges admitted past the limit", labels,
              s.forced_overages);
        };
        emit(MemoryBudget::Process());
        emit(&memory_budget_);
      });
  // \statusz sections for everything this database owns. The provider
  // runs under the statusz registry lock and takes only component locks
  // below it (the metrics-collector lock order).
  statusz_id_ = StatuszRegistry::Global()->AddProvider(
      [this](std::vector<StatuszSection>* out) {
        {
          StatuszSection s;
          s.name = "admission";
          AdmissionStats a = admission_.stats();
          s.AddInt("active", admission_.active());
          s.AddInt("queued", admission_.queued());
          s.AddUint("admitted", a.admitted);
          s.AddUint("shed_queue_full", a.shed_queue_full);
          s.AddUint("shed_timeout", a.shed_timeout);
          s.AddUint("shed_cancelled", a.shed_cancelled);
          s.AddUint("active_peak", a.active_peak);
          s.AddUint("queued_peak", a.queued_peak);
          out->push_back(std::move(s));
        }
        for (MemoryBudget* b :
             {MemoryBudget::Process(), &memory_budget_}) {
          StatuszSection s;
          s.name = "memory/" + b->name();
          s.AddUint("used_bytes", b->used());
          s.AddUint("peak_used_bytes", b->peak_used());
          s.AddUint("limit_bytes", b->limit());
          MemoryBudgetStats ms = b->stats();
          s.AddUint("reserve_failures", ms.reserve_failures);
          s.AddUint("pressure_invocations", ms.pressure_invocations);
          s.AddUint("pressure_released_bytes",
                    ms.pressure_released_bytes);
          out->push_back(std::move(s));
        }
        {
          StatuszSection s;
          s.name = "buffer_pool";
          BufferPoolStats bp = buffer_pool_.stats();
          s.AddUint("pool_pages", buffer_pool_.pool_size());
          s.AddUint("resident_pages", buffer_pool_.resident_pages());
          s.AddUint("hits", bp.hits);
          s.AddUint("misses", bp.misses);
          s.AddUint("evictions", bp.evictions);
          out->push_back(std::move(s));
        }
        if (spill_ != nullptr) {
          StatuszSection s;
          s.name = "spill";
          SpillStats sp = spill_->stats();
          s.AddUint("active_files", spill_->active_files());
          s.AddUint("runs_written", sp.runs_written);
          s.AddUint("bytes_written", sp.bytes_written);
          s.AddUint("bytes_read", sp.bytes_read);
          out->push_back(std::move(s));
        }
        {
          StatuszSection s;
          s.name = "pump";
          std::vector<ReqPump::InFlightCall> calls = pump_.InFlightCalls();
          s.AddUint("in_flight", calls.size());
          for (const ReqPump::InFlightCall& c : calls) {
            s.Add(StrFormat("call_%llu", (unsigned long long)c.id),
                  StrFormat("dest=%s qid=%llu age=%lldus",
                            c.destination.c_str(),
                            (unsigned long long)c.query_id,
                            (long long)c.age_micros));
          }
          out->push_back(std::move(s));
        }
        {
          StatuszSection s;
          s.name = "postmortems";
          s.AddUint("emitted", postmortem_log_.emitted_total());
          s.AddUint("suppressed", postmortem_log_.suppressed_total());
          out->push_back(std::move(s));
        }
      });
}

WsqDatabase::WsqDatabase(const Options& options)
    : WsqDatabase(options, std::make_unique<InMemoryDiskManager>(),
                  /*disk=*/nullptr, /*owned_wal=*/nullptr,
                  /*wal=*/nullptr, /*persistent=*/false) {}

WsqDatabase::~WsqDatabase() {
  StatuszRegistry::Global()->RemoveProvider(statusz_id_);
  MetricsRegistry::Global()->RemoveCollector(mem_collector_id_);
  if (persistent_ && options_.checkpoint_on_close) {
    Status s = Checkpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "WsqDatabase checkpoint failed: %s\n",
                   s.ToString().c_str());
    }
  }
}

Result<std::unique_ptr<WsqDatabase>> WsqDatabase::Open(
    const std::string& path, const Options& options) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<FileDiskManager> disk,
                       FileDiskManager::Open(path, options.sync_policy));
  auto wal =
      std::make_unique<FileWalStorage>(path + ".wal", options.sync_policy);
  DiskManager* disk_ptr = disk.get();
  WalStorage* wal_ptr = wal.get();
  std::unique_ptr<WsqDatabase> db(
      new WsqDatabase(options, std::move(disk), disk_ptr, std::move(wal),
                      wal_ptr, /*persistent=*/true));
  return OpenImpl(std::move(db));
}

Result<std::unique_ptr<WsqDatabase>> WsqDatabase::OpenWithStorage(
    DiskManager* disk, WalStorage* wal, const Options& options) {
  std::unique_ptr<WsqDatabase> db(new WsqDatabase(
      options, nullptr, disk, nullptr, wal, /*persistent=*/true));
  return OpenImpl(std::move(db));
}

Result<std::unique_ptr<WsqDatabase>> WsqDatabase::OpenImpl(
    std::unique_ptr<WsqDatabase> db) {
  // Finish or roll back an interrupted checkpoint before reading any
  // page through the buffer pool.
  if (db->wal_ != nullptr) {
    WSQ_ASSIGN_OR_RETURN(db->last_recovery_,
                         RecoverCheckpoint(db->wal_, db->disk_));
  }
  bool fresh = db->disk_->NumPages() == 0;
  if (fresh) {
    // Reserve the catalog root page (page 0), write an empty catalog,
    // and checkpoint immediately so reopen always finds valid metadata
    // even if the process dies before the first explicit checkpoint.
    WSQ_ASSIGN_OR_RETURN(Page * root, db->buffer_pool_.NewPage());
    if (root->page_id() != kCatalogRootPage) {
      return Status::Internal("catalog root is not page 0");
    }
    WSQ_RETURN_IF_ERROR(
        db->buffer_pool_.UnpinPage(root->page_id(), /*dirty=*/true));
    WSQ_RETURN_IF_ERROR(db->Checkpoint());
  } else {
    WSQ_RETURN_IF_ERROR(LoadCatalog(&db->catalog_, &db->buffer_pool_));
  }
  return db;
}

Status WsqDatabase::Checkpoint() {
  if (!persistent_) {
    return Status::InvalidArgument(
        "Checkpoint() requires a file-backed database (use Open)");
  }
  // A failed earlier attempt may have left a log behind: a committed
  // one must be finished (its pages may be half-installed), a torn one
  // discarded — otherwise its bytes would corrupt the log written
  // below. Replay is idempotent and every still-dirty page gets
  // re-logged, so this is safe in all interleavings.
  if (wal_ != nullptr) {
    WSQ_RETURN_IF_ERROR(RecoverCheckpoint(wal_, disk_).status());
  }
  WSQ_RETURN_IF_ERROR(SaveCatalog(catalog_, &buffer_pool_));
  std::vector<std::pair<PageId, std::string>> dirty =
      buffer_pool_.DirtyPageImages();
  if (dirty.empty()) return Status::OK();
  if (wal_ != nullptr) {
    // Phase 1: harden every dirty page image in the log. The commit
    // record's sync is the checkpoint's commit point.
    LogWriter writer(wal_);
    for (const auto& [page_id, frame] : dirty) {
      WSQ_RETURN_IF_ERROR(writer.AppendPageImage(page_id, frame.data()));
    }
    WSQ_RETURN_IF_ERROR(writer.Commit(static_cast<uint32_t>(dirty.size())));
  }
  // Phase 2: install the images into the database file. A crash here
  // is repaired on the next Open by replaying the committed log.
  WSQ_RETURN_IF_ERROR(buffer_pool_.FlushAll());
  WSQ_RETURN_IF_ERROR(disk_->Sync());
  if (wal_ != nullptr) {
    WSQ_RETURN_IF_ERROR(wal_->Reset());
  }
  FlightRecorder::Global()->Record(FrEventType::kWalCheckpoint, "wal",
                                   /*cause=*/"", /*query_id=*/0,
                                   static_cast<int64_t>(dirty.size()));
  return Status::OK();
}

Status WsqDatabase::RegisterSearchEngine(const std::string& engine_name,
                                         SearchService* service,
                                         bool supports_near) {
  bool first = vtables_.List().empty();
  WSQ_RETURN_IF_ERROR(vtables_.Register(std::make_unique<WebCountTable>(
      "WebCount_" + engine_name, service, supports_near)));
  WSQ_RETURN_IF_ERROR(vtables_.Register(std::make_unique<WebPagesTable>(
      "WebPages_" + engine_name, service, supports_near)));
  if (first) {
    WSQ_RETURN_IF_ERROR(vtables_.Register(std::make_unique<WebCountTable>(
        "WebCount", service, supports_near)));
    WSQ_RETURN_IF_ERROR(vtables_.Register(std::make_unique<WebPagesTable>(
        "WebPages", service, supports_near)));
  }
  return Status::OK();
}

Result<QueryExecution> WsqDatabase::Execute(const std::string& sql,
                                            const ExecOptions& options) {
  // Per-query observability wrapper around the real dispatch: every
  // statement — success or failure — lands in the registry counters,
  // the latency histogram, and (past the threshold) the slow-query
  // log. Instrument handles are fetched once per process.
  MetricsRegistry* registry = MetricsRegistry::Global();
  static Counter* queries = registry->GetCounter(
      "wsq_queries_total", "Statements executed (all kinds)");
  static Counter* errors = registry->GetCounter(
      "wsq_query_errors_total", "Statements that returned an error");
  static Histogram* latency = registry->GetHistogram(
      "wsq_query_latency_micros", "End-to-end statement latency");

  uint64_t query_id =
      g_next_query_id.fetch_add(1, std::memory_order_relaxed);
  // Bind the id to this thread for the whole statement: every
  // flight-recorder event the query causes on this thread (admission
  // waits, call registrations, memory pressure) is stamped with it, and
  // the pump/sharded layers carry it across threads from here.
  QueryIdBinding qid_binding(query_id);
  FlightRecorder* recorder = FlightRecorder::Global();
  recorder->Record(FrEventType::kQueryBegin, /*destination=*/"",
                   /*cause=*/"", query_id);

  Stopwatch timer;
  QueryStats failure_stats;
  Result<QueryExecution> result =
      ExecuteInternal(sql, options, &failure_stats);
  int64_t elapsed = timer.ElapsedMicros();

  if (queries != nullptr) queries->Increment();
  if (latency != nullptr) latency->RecordWithExemplar(elapsed, query_id);
  if (!result.ok() && errors != nullptr) errors->Increment();

  // Stats for forensics: the successful execution's, or whatever the
  // query accumulated before it died.
  const QueryStats* stats = &failure_stats;
  if (result.ok()) {
    result->stats.query_id = query_id;
    // Prefer the executor's own elapsed time for SELECTs (it excludes
    // parse/admission); the wrapper's timer covers everything else.
    if (result->stats.elapsed_micros == 0) {
      result->stats.elapsed_micros = elapsed;
    }
    stats = &result->stats;
  }
  const uint64_t degraded_tuples = stats->dropped_tuples +
                                   stats->null_padded_tuples +
                                   stats->shed_tuples;
  const bool degraded =
      stats->partial_results > 0 || degraded_tuples > 0;
  recorder->Record(FrEventType::kQueryEnd, /*destination=*/"",
                   result.ok()
                       ? (degraded ? "degraded" : "")
                       : StatusCodeToString(result.status().code()),
                   query_id, elapsed);

  SlowQueryRecord record;
  record.query_id = query_id;
  record.sql = sql;
  record.elapsed_micros = elapsed;
  record.ok = result.ok();
  if (result.ok()) record.rows = result->result.rows.size();
  if (!result.ok()) record.error = result.status().ToString();
  record.external_calls = stats->external_calls;
  record.failed_calls = stats->failed_calls;
  record.degraded_tuples = degraded_tuples;
  record.partial_results = stats->partial_results;
  record.degraded_shards = stats->degraded_shards;
  record.spilled_bytes = stats->spilled_bytes;
  record.spill_runs = stats->spill_runs;
  record.peak_memory_bytes = stats->peak_memory_bytes;
  record.async_iteration = stats->async_iteration;
  slow_query_log_.MaybeLog(std::move(record), options.slow_query_micros);

  // Postmortem trigger: any failed statement, and any OK statement that
  // returned degraded data (partial shard answers, dropped/NULL-padded/
  // shed tuples). Steady-state success emits nothing.
  if (!result.ok() || degraded) {
    PostmortemRecord pm;
    pm.query_id = query_id;
    pm.sql = sql;
    pm.ok = result.ok();
    pm.elapsed_micros = elapsed;
    if (result.ok()) {
      pm.verdict = "OK";
      pm.cause = stats->partial_results > 0
                     ? StrFormat("partial results from %llu call(s), %llu "
                                 "shard(s) missing",
                                 (unsigned long long)stats->partial_results,
                                 (unsigned long long)stats->degraded_shards)
                     : StrFormat("%llu tuple(s) degraded",
                                 (unsigned long long)degraded_tuples);
    } else {
      pm.verdict = std::string(
          StatusCodeToString(result.status().code()));
      pm.cause = result.status().message();
    }
    pm.partial_results = stats->partial_results > 0;
    pm.degraded_tuples = degraded_tuples;
    pm.external_calls = stats->external_calls;
    pm.failed_calls = stats->failed_calls;
    pm.spilled_bytes = stats->spilled_bytes;
    pm.spill_runs = stats->spill_runs;
    pm.peak_memory_bytes = stats->peak_memory_bytes;
    pm.events = recorder->EventsForQuery(query_id);
    postmortem_log_.Log(std::move(pm));
  }
  return result;
}

Result<QueryExecution> WsqDatabase::ExecuteInternal(
    const std::string& sql, const ExecOptions& options,
    QueryStats* failure_stats) {
  // Query governor: one token carries the deadline and the cancel flag
  // for the whole statement. A caller-supplied token lets another
  // thread abort mid-flight; otherwise a private one enforces just the
  // deadline.
  CancellationToken local_token;
  CancellationToken* token =
      options.cancel != nullptr ? options.cancel : &local_token;
  if (options.deadline_micros > 0) {
    token->SetDeadlineAfter(options.deadline_micros);
  }

  // Overload admission: bounded-wait-then-shed before any parsing or
  // planning work is sunk into the query. The ticket holds the
  // execution slot until this function returns.
  WSQ_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                       admission_.Admit(token));
  // Waiting for a slot may have consumed the whole budget.
  WSQ_RETURN_IF_ERROR(token->CheckAlive());

  // Tier 3 of the degradation ladder: refuse new statements when the
  // database/process budget cannot yield even a token reservation.
  // TryReserve runs the pressure hooks (cache and buffer-pool
  // shedding) before failing, so this only fires once shedding can no
  // longer keep the process under budget.
  constexpr size_t kAdmissionProbeBytes = 16 * 1024;
  if (!memory_budget_.TryReserve(kAdmissionProbeBytes)) {
    return Status::ResourceExhausted(
        "memory budget exhausted: statement refused (raise "
        "Options::memory_budget_bytes or retry after load drops)");
  }
  memory_budget_.Release(kAdmissionProbeBytes);

  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                       Parser::Parse(sql));
  switch (stmt->kind()) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(*stmt),
                           options, token, failure_stats);
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const CreateTableStatement&>(*stmt));
    case Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(
          static_cast<const CreateIndexStatement&>(*stmt));
    case Statement::Kind::kDropTable: {
      const auto& drop = static_cast<const DropTableStatement&>(*stmt);
      WSQ_RETURN_IF_ERROR(catalog_.DropTable(drop.table));
      return QueryExecution{};
    }
    case Statement::Kind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(*stmt));
    case Statement::Kind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(*stmt));
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(*stmt));
    case Statement::Kind::kExplain: {
      const auto& explain = static_cast<const ExplainStatement&>(*stmt);
      if (explain.analyze) {
        // EXPLAIN ANALYZE actually runs the query, then returns the
        // profile-annotated operator tree instead of the rows.
        ExecOptions run = options;
        run.analyze = true;
        run.async_iteration = explain.async;
        WSQ_ASSIGN_OR_RETURN(
            QueryExecution exec,
            ExecuteSelect(*explain.select, run, token, failure_stats));
        std::string text;
        if (exec.profile.has_value()) text = exec.profile->ToString();
        text += StrFormat(
            "-- rows=%llu elapsed=%s external_calls=%llu mode=%s\n",
            static_cast<unsigned long long>(exec.result.rows.size()),
            FormatMicros(exec.stats.elapsed_micros).c_str(),
            static_cast<unsigned long long>(exec.stats.external_calls),
            exec.stats.async_iteration ? "async" : "sync");
        QueryExecution out;
        out.stats = exec.stats;
        out.profile = std::move(exec.profile);
        out.trace = std::move(exec.trace);
        out.result.schema =
            Schema({Column("Plan", TypeId::kString, "")});
        out.result.rows.push_back(Row({Value::Str(std::move(text))}));
        return out;
      }
      Binder binder(&catalog_, &vtables_, options_.binder);
      WSQ_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           binder.Bind(*explain.select));
      if (explain.async) {
        WSQ_ASSIGN_OR_RETURN(
            plan, ApplyAsyncIteration(std::move(plan), options.rewrite));
      }
      std::string text = plan->ToString();
      WSQ_ASSIGN_OR_RETURN(PlanCostEstimate cost,
                           EstimatePlanCost(*plan));
      text += "-- " + cost.ToString() + "\n";
      QueryExecution out;
      out.result.schema =
          Schema({Column("Plan", TypeId::kString, "")});
      out.result.rows.push_back(Row({Value::Str(std::move(text))}));
      return out;
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<std::string> WsqDatabase::ExplainSelect(const std::string& sql,
                                               bool async,
                                               RewriteOptions rewrite) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> stmt,
                       Parser::ParseSelect(sql));
  Binder binder(&catalog_, &vtables_, options_.binder);
  WSQ_ASSIGN_OR_RETURN(PlanNodePtr plan, binder.Bind(*stmt));
  if (async) {
    WSQ_ASSIGN_OR_RETURN(plan,
                         ApplyAsyncIteration(std::move(plan), rewrite));
  }
  std::string out = plan->ToString();
  WSQ_ASSIGN_OR_RETURN(PlanCostEstimate cost, EstimatePlanCost(*plan));
  out += "-- " + cost.ToString() + "\n";
  return out;
}

Result<QueryExecution> WsqDatabase::ExecuteSelect(
    const SelectStatement& stmt, const ExecOptions& options,
    const CancellationToken* token, QueryStats* failure_stats) {
  // The tracer (when requested) lives for the whole select so the
  // bind/rewrite/execute phases all land in one trace; the TLS binding
  // lets the buffer pool and WAL attach their I/O to this query.
  std::unique_ptr<Tracer> tracer;
  if (options.trace) {
    tracer = std::make_unique<Tracer>(options.trace_max_spans);
  }
  Tracer::ThreadBinding binding(tracer.get());

  PlanNodePtr plan;
  {
    std::optional<Tracer::Scope> span;
    if (tracer != nullptr) span.emplace(tracer.get(), "query", "bind");
    Binder binder(&catalog_, &vtables_, options_.binder);
    WSQ_ASSIGN_OR_RETURN(plan, binder.Bind(stmt));
  }
  if (options.async_iteration) {
    std::optional<Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer.get(), "query", "rewrite");
    }
    RewriteOptions rewrite = options.rewrite;
    if (options.on_call_error != OnCallError::kFailQuery) {
      rewrite.on_call_error = options.on_call_error;
    }
    WSQ_ASSIGN_OR_RETURN(plan,
                         ApplyAsyncIteration(std::move(plan), rewrite));
  }

  uint64_t calls_before = pump_.stats().registered;
  // Per-query budget: a child of the database budget, so the tighter
  // of the per-query and database/process limits wins. Everything the
  // operators reserve flows up this chain; the budget must outlive the
  // operator tree, which ExecutePlan guarantees (the tree dies inside
  // the call).
  MemoryBudget query_budget("query", options.memory_budget_bytes,
                            &memory_budget_);
  uint64_t db_pressure_before =
      memory_budget_.stats().pressure_released_bytes;
  ExecContext ctx;
  ctx.pump = &pump_;
  ctx.token = token;
  ctx.tracer = tracer.get();
  ctx.profile = options.analyze;
  ctx.shard = options.shard;
  ctx.memory = &query_budget;
  ctx.spill = spill_.get();
  PlanProfileNode profile;
  Stopwatch timer;
  Result<ResultSet> executed = [&]() -> Result<ResultSet> {
    std::optional<Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer.get(), "query", "execute");
    }
    return ExecutePlan(*plan, &ctx,
                       options.analyze ? &profile : nullptr);
  }();
  auto fill_stats = [&](QueryStats* stats) {
    stats->elapsed_micros = timer.ElapsedMicros();
    stats->external_calls = pump_.stats().registered - calls_before +
                            ctx.sync_external_calls.load();
    stats->async_iteration = options.async_iteration;
    stats->failed_calls = ctx.failed_calls.load();
    stats->dropped_tuples = ctx.dropped_tuples.load();
    stats->null_padded_tuples = ctx.null_padded_tuples.load();
    stats->cancelled_calls = ctx.cancelled_calls.load();
    stats->shed_tuples = ctx.shed_tuples.load();
    stats->peak_buffered_rows = ctx.reqsync_peak_rows.load();
    stats->peak_buffered_bytes = ctx.reqsync_peak_bytes.load();
    stats->partial_results = ctx.partial_results.load();
    stats->degraded_shards = ctx.degraded_shards.load();
    stats->spilled_bytes = ctx.spilled_bytes.load();
    stats->spill_runs = ctx.spill_runs.load();
    stats->peak_memory_bytes = query_budget.peak_used();
    stats->pressure_released_bytes =
        query_budget.stats().pressure_released_bytes +
        (memory_budget_.stats().pressure_released_bytes -
         db_pressure_before);
  };
  if (!executed.ok()) {
    if (tracer != nullptr) {
      tracer->Event("query", "error",
                    std::string(StatusCodeToString(
                        executed.status().code())));
    }
    // A dying query still reports what it did (failed external calls,
    // spill activity, peak memory) for the postmortem.
    if (failure_stats != nullptr) fill_stats(failure_stats);
    return executed.status();
  }

  QueryExecution out;
  out.result = std::move(executed).value();
  fill_stats(&out.stats);
  if (options.analyze) out.profile = std::move(profile);
  if (tracer != nullptr) out.trace = tracer->Finish();
  return out;
}

Result<QueryExecution> WsqDatabase::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  if (vtables_.Has(stmt.table)) {
    return Status::AlreadyExists(
        "name is taken by a virtual table: " + stmt.table);
  }
  Schema schema;
  for (const ColumnDef& def : stmt.columns) {
    schema.AddColumn(Column(def.name, def.type));
  }
  WSQ_RETURN_IF_ERROR(catalog_.CreateTable(stmt.table, schema).status());
  return QueryExecution{};
}

Result<QueryExecution> WsqDatabase::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  WSQ_ASSIGN_OR_RETURN(TableInfo * table, catalog_.GetTable(stmt.table));
  // Index names are unique database-wide.
  for (const std::string& name : catalog_.ListTables()) {
    TableInfo* t = *catalog_.GetTable(name);
    for (const auto& index : t->indexes()) {
      if (EqualsIgnoreCase(index->name(), stmt.index)) {
        return Status::AlreadyExists("index already exists: " +
                                     stmt.index);
      }
    }
  }
  WSQ_RETURN_IF_ERROR(
      table->CreateIndex(stmt.index, stmt.column, &buffer_pool_)
          .status());
  return QueryExecution{};
}

Result<QueryExecution> WsqDatabase::ExecuteInsert(
    const InsertStatement& stmt) {
  WSQ_ASSIGN_OR_RETURN(TableInfo * table, catalog_.GetTable(stmt.table));
  const Schema empty;
  const Row no_row;
  for (const auto& values : stmt.rows) {
    Row row;
    for (size_t i = 0; i < values.size(); ++i) {
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                           Binder::BindScalar(*values[i], empty));
      WSQ_ASSIGN_OR_RETURN(Value v, bound->Eval(no_row));
      // Widen INT literals destined for DOUBLE columns.
      if (i < table->schema().NumColumns() &&
          table->schema().column(i).type == TypeId::kDouble &&
          v.is_int()) {
        v = Value::Real(static_cast<double>(v.AsInt()));
      }
      row.Append(std::move(v));
    }
    WSQ_RETURN_IF_ERROR(table->Insert(row));
  }
  return QueryExecution{};
}

Result<QueryExecution> WsqDatabase::ExecuteDelete(
    const DeleteStatement& stmt) {
  WSQ_ASSIGN_OR_RETURN(TableInfo * table, catalog_.GetTable(stmt.table));
  BoundExprPtr predicate;
  if (stmt.where != nullptr) {
    WSQ_ASSIGN_OR_RETURN(predicate,
                         Binder::BindScalar(*stmt.where, table->schema()));
  }

  // Collect matching rids first, then tombstone (no iterator
  // invalidation concerns).
  std::vector<Rid> victims;
  {
    HeapFileScanner scanner(table->heap());
    Rid rid;
    std::string bytes;
    while (true) {
      WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(&rid, &bytes));
      if (!more) break;
      if (predicate != nullptr) {
        WSQ_ASSIGN_OR_RETURN(Row row, DeserializeRow(bytes));
        WSQ_ASSIGN_OR_RETURN(bool match, EvalPredicate(*predicate, row));
        if (!match) continue;
      }
      victims.push_back(rid);
    }
  }
  for (const Rid& rid : victims) {
    WSQ_RETURN_IF_ERROR(table->Delete(rid));  // maintains indexes
  }

  QueryExecution out;
  out.result.schema = Schema({Column("Deleted", TypeId::kInt64, "")});
  out.result.rows.push_back(
      Row({Value::Int(static_cast<int64_t>(victims.size()))}));
  return out;
}

Result<QueryExecution> WsqDatabase::ExecuteUpdate(
    const UpdateStatement& stmt) {
  WSQ_ASSIGN_OR_RETURN(TableInfo * table, catalog_.GetTable(stmt.table));
  const Schema& schema = table->schema();

  BoundExprPtr predicate;
  if (stmt.where != nullptr) {
    WSQ_ASSIGN_OR_RETURN(predicate,
                         Binder::BindScalar(*stmt.where, schema));
  }
  // Bind assignments: column index + value expression over the old row.
  std::vector<std::pair<size_t, BoundExprPtr>> assignments;
  for (const UpdateStatement::Assignment& a : stmt.assignments) {
    WSQ_ASSIGN_OR_RETURN(size_t col, schema.Find("", a.column));
    for (const auto& [existing, unused] : assignments) {
      if (existing == col) {
        return Status::BindError("column assigned twice: " + a.column);
      }
    }
    WSQ_ASSIGN_OR_RETURN(BoundExprPtr value,
                         Binder::BindScalar(*a.value, schema));
    assignments.emplace_back(col, std::move(value));
  }

  // Materialize the new rows first, then delete + reinsert (a tombstone
  // plus append; rids are not stable across updates).
  std::vector<std::pair<Rid, Row>> updates;
  {
    HeapFileScanner scanner(table->heap());
    Rid rid;
    std::string bytes;
    while (true) {
      WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(&rid, &bytes));
      if (!more) break;
      WSQ_ASSIGN_OR_RETURN(Row row, DeserializeRow(bytes));
      if (predicate != nullptr) {
        WSQ_ASSIGN_OR_RETURN(bool match, EvalPredicate(*predicate, row));
        if (!match) continue;
      }
      Row updated = row;
      for (const auto& [col, value] : assignments) {
        WSQ_ASSIGN_OR_RETURN(Value v, value->Eval(row));
        if (schema.column(col).type == TypeId::kDouble && v.is_int()) {
          v = Value::Real(static_cast<double>(v.AsInt()));
        }
        updated.value(col) = std::move(v);
      }
      updates.emplace_back(rid, std::move(updated));
    }
  }
  for (auto& [rid, row] : updates) {
    WSQ_RETURN_IF_ERROR(table->Delete(rid));  // maintains indexes
    WSQ_RETURN_IF_ERROR(table->Insert(row));
  }

  QueryExecution out;
  out.result.schema = Schema({Column("Updated", TypeId::kInt64, "")});
  out.result.rows.push_back(
      Row({Value::Int(static_cast<int64_t>(updates.size()))}));
  return out;
}

}  // namespace wsq
