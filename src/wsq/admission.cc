#include "wsq/admission.h"

#include <algorithm>

#include "common/clock.h"

namespace wsq {

namespace {
/// Queued queries re-check their token at this quantum, mirroring the
/// ReqPump's cancellation poll, so a cancelled query leaves the queue
/// promptly even if no slot frees up.
constexpr int64_t kCancelPollMicros = 5000;
}  // namespace

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

void AdmissionController::Release() {
  MutexLock lock(&mu_);
  --active_;
  cv_.NotifyAll();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const CancellationToken* token) {
  MutexLock lock(&mu_);
  if (limits_.max_concurrent_queries <= 0 ||
      active_ < limits_.max_concurrent_queries) {
    ++active_;
    ++stats_.admitted;
    stats_.active_peak =
        std::max(stats_.active_peak, static_cast<uint64_t>(active_));
    return Ticket(this);
  }

  // All slots busy. Shed immediately if the wait queue is full (or
  // queueing is disabled), else join it for a bounded wait.
  if (queued_ >= limits_.max_queued) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        "server overloaded: admission queue is full");
  }
  ++queued_;
  stats_.queued_peak =
      std::max(stats_.queued_peak, static_cast<uint64_t>(queued_));
  const int64_t wait_deadline =
      limits_.max_queue_wait_micros > 0
          ? NowMicros() + limits_.max_queue_wait_micros
          : 0;
  Status shed = Status::OK();
  while (active_ >= limits_.max_concurrent_queries) {
    if (token != nullptr) {
      Status alive = token->CheckAlive();
      if (!alive.ok()) {
        ++stats_.shed_cancelled;
        shed = alive;
        break;
      }
    }
    int64_t wait = kCancelPollMicros;
    if (wait_deadline > 0) {
      int64_t remaining = wait_deadline - NowMicros();
      if (remaining <= 0) {
        ++stats_.shed_timeout;
        shed = Status::ResourceExhausted(
            "server overloaded: no execution slot freed within the "
            "admission wait bound");
        break;
      }
      wait = std::min(wait, remaining);
    }
    cv_.WaitForMicros(mu_, wait);
  }
  --queued_;
  if (!shed.ok()) return shed;
  ++active_;
  ++stats_.admitted;
  stats_.active_peak =
      std::max(stats_.active_peak, static_cast<uint64_t>(active_));
  return Ticket(this);
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

int AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

int AdmissionController::queued() const {
  MutexLock lock(&mu_);
  return queued_;
}

}  // namespace wsq
