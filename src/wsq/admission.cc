#include "wsq/admission.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace wsq {

namespace {
/// Queued queries re-check their token at this quantum, mirroring the
/// ReqPump's cancellation poll, so a cancelled query leaves the queue
/// promptly even if no slot frees up.
constexpr int64_t kCancelPollMicros = 5000;
}  // namespace

AdmissionController::AdmissionController(AdmissionLimits limits)
    : limits_(limits) {
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        AdmissionStats s;
        int active;
        int queued;
        {
          MutexLock lock(&mu_);
          s = stats_;
          active = active_;
          queued = queued_;
        }
        emitter->EmitCounter("wsq_admission_admitted_total",
                             "Queries granted an execution slot", {},
                             s.admitted);
        emitter->EmitCounter("wsq_admission_shed_queue_full_total",
                             "Arrivals shed: admission queue full", {},
                             s.shed_queue_full);
        emitter->EmitCounter("wsq_admission_shed_timeout_total",
                             "Queued queries shed: wait bound exceeded", {},
                             s.shed_timeout);
        emitter->EmitCounter(
            "wsq_admission_shed_cancelled_total",
            "Queued queries shed: cancelled/deadline while waiting", {},
            s.shed_cancelled);
        emitter->EmitGauge("wsq_admission_active",
                           "Queries executing right now", {}, active);
        emitter->EmitGauge("wsq_admission_queued",
                           "Queries waiting for an execution slot", {},
                           queued);
        emitter->EmitGauge("wsq_admission_active_peak",
                           "Peak concurrently executing queries", {},
                           static_cast<int64_t>(s.active_peak));
      });
}

AdmissionController::~AdmissionController() {
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

void AdmissionController::Release() {
  MutexLock lock(&mu_);
  --active_;
  cv_.NotifyAll();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const CancellationToken* token) {
  MutexLock lock(&mu_);
  if (limits_.max_concurrent_queries <= 0 ||
      active_ < limits_.max_concurrent_queries) {
    ++active_;
    ++stats_.admitted;
    stats_.active_peak =
        std::max(stats_.active_peak, static_cast<uint64_t>(active_));
    return Ticket(this);
  }

  // All slots busy. Shed immediately if the wait queue is full (or
  // queueing is disabled), else join it for a bounded wait.
  if (queued_ >= limits_.max_queued) {
    ++stats_.shed_queue_full;
    FlightRecorder::Global()->Record(FrEventType::kAdmissionShed,
                                     "admission", "queue_full",
                                     /*query_id=*/0, queued_);
    return Status::ResourceExhausted(
        "server overloaded: admission queue is full");
  }
  ++queued_;
  stats_.queued_peak =
      std::max(stats_.queued_peak, static_cast<uint64_t>(queued_));
  const int64_t wait_start_micros = NowMicros();
  FlightRecorder::Global()->Record(FrEventType::kAdmissionWait, "admission",
                                   "slots_busy", /*query_id=*/0, queued_);
  const int64_t wait_deadline =
      limits_.max_queue_wait_micros > 0
          ? NowMicros() + limits_.max_queue_wait_micros
          : 0;
  Status shed = Status::OK();
  while (active_ >= limits_.max_concurrent_queries) {
    if (token != nullptr) {
      Status alive = token->CheckAlive();
      if (!alive.ok()) {
        ++stats_.shed_cancelled;
        shed = alive;
        break;
      }
    }
    int64_t wait = kCancelPollMicros;
    if (wait_deadline > 0) {
      int64_t remaining = wait_deadline - NowMicros();
      if (remaining <= 0) {
        ++stats_.shed_timeout;
        shed = Status::ResourceExhausted(
            "server overloaded: no execution slot freed within the "
            "admission wait bound");
        break;
      }
      wait = std::min(wait, remaining);
    }
    cv_.WaitForMicros(mu_, wait);
  }
  --queued_;
  if (!shed.ok()) {
    FlightRecorder::Global()->Record(
        FrEventType::kAdmissionShed, "admission",
        shed.code() == StatusCode::kResourceExhausted ? "wait_timeout"
                                                      : "cancelled",
        /*query_id=*/0, NowMicros() - wait_start_micros);
    return shed;
  }
  ++active_;
  ++stats_.admitted;
  stats_.active_peak =
      std::max(stats_.active_peak, static_cast<uint64_t>(active_));
  return Ticket(this);
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

int AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

int AdmissionController::queued() const {
  MutexLock lock(&mu_);
  return queued_;
}

}  // namespace wsq
