#ifndef WSQ_PARSER_LEXER_H_
#define WSQ_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace wsq {

/// Tokenizes a SQL string. Keywords are case-insensitive; string literals
/// use single quotes with '' as the escape for a quote; -- starts a
/// comment to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input (the final token is kEof).
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  Status Error(const std::string& message) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace wsq

#endif  // WSQ_PARSER_LEXER_H_
