#include "parser/parser.h"

#include "common/macros.h"
#include "common/strings.h"
#include "parser/lexer.h"

namespace wsq {

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEof sentinel
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenType t) {
  if (Check(t)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenType t, const std::string& context) {
  if (Check(t)) return Advance();
  return Error(StrFormat("expected %s %s, found %s",
                         std::string(TokenTypeToString(t)).c_str(),
                         context.c_str(),
                         std::string(TokenTypeToString(Peek().type)).c_str()));
}

Status Parser::Error(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(StrFormat("%s at line %d column %d",
                                      message.c_str(), t.line, t.column));
}

Result<std::unique_ptr<Statement>> Parser::Parse(std::string_view sql) {
  Lexer lexer(sql);
  WSQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                       parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEof)) {
    return parser.Error("unexpected trailing input");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect(
    std::string_view sql) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parse(sql));
  if (stmt->kind() != Statement::Kind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::unique_ptr<SelectStatement>(
      static_cast<SelectStatement*>(stmt.release()));
}

Result<ParsedExprPtr> Parser::ParseExpression(std::string_view sql) {
  Lexer lexer(sql);
  WSQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr expr, parser.ParseExpr());
  if (!parser.Check(TokenType::kEof)) {
    return parser.Error("unexpected trailing input");
  }
  return expr;
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement() {
  switch (Peek().type) {
    case TokenType::kSelect: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseSelectStatement());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kCreate: {
      if (Peek(1).type == TokenType::kIndex) {
        WSQ_ASSIGN_OR_RETURN(auto stmt, ParseCreateIndex());
        return std::unique_ptr<Statement>(std::move(stmt));
      }
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseCreateTable());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kInsert: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseInsert());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kDelete: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseDelete());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kDrop: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseDropTable());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kUpdate: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseUpdate());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    case TokenType::kExplain: {
      WSQ_ASSIGN_OR_RETURN(auto stmt, ParseExplain());
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    default:
      return Error(
          "expected SELECT, CREATE, INSERT, UPDATE, DELETE, or "
          "EXPLAIN");
  }
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelectStatement() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kSelect, "").status());
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = Match(TokenType::kDistinct);

  // Select list.
  do {
    WSQ_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->select_list.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  WSQ_RETURN_IF_ERROR(
      Expect(TokenType::kFrom, "after select list").status());

  do {
    WSQ_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt->from.push_back(std::move(ref));
  } while (Match(TokenType::kComma));

  if (Match(TokenType::kWhere)) {
    WSQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (Match(TokenType::kGroup)) {
    WSQ_RETURN_IF_ERROR(Expect(TokenType::kBy, "after GROUP").status());
    do {
      WSQ_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }

  if (Match(TokenType::kHaving)) {
    WSQ_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (Match(TokenType::kOrder)) {
    WSQ_RETURN_IF_ERROR(Expect(TokenType::kBy, "after ORDER").status());
    do {
      OrderByItem item;
      WSQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match(TokenType::kDesc)) {
        item.descending = true;
      } else {
        Match(TokenType::kAsc);
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  if (Match(TokenType::kLimit)) {
    WSQ_ASSIGN_OR_RETURN(Token n, Expect(TokenType::kIntegerLiteral,
                                         "after LIMIT"));
    if (n.int_value < 0) return Error("LIMIT must be non-negative");
    stmt->limit = n.int_value;
  }

  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  WSQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (Match(TokenType::kAs)) {
    WSQ_ASSIGN_OR_RETURN(Token alias,
                         Expect(TokenType::kIdentifier, "after AS"));
    item.alias = alias.text;
  } else if (Check(TokenType::kIdentifier)) {
    // Bare alias: `SELECT expr name`.
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "in FROM clause"));
  ref.table = name.text;
  if (Match(TokenType::kAs)) {
    WSQ_ASSIGN_OR_RETURN(Token alias,
                         Expect(TokenType::kIdentifier, "after AS"));
    ref.alias = alias.text;
  } else if (Check(TokenType::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<std::unique_ptr<CreateTableStatement>> Parser::ParseCreateTable() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kCreate, "").status());
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kTable, "after CREATE").status());
  auto stmt = std::make_unique<CreateTableStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = name.text;
  WSQ_RETURN_IF_ERROR(
      Expect(TokenType::kLParen, "before column list").status());
  do {
    ColumnDef def;
    WSQ_ASSIGN_OR_RETURN(Token col,
                         Expect(TokenType::kIdentifier, "column name"));
    def.name = col.text;
    switch (Peek().type) {
      case TokenType::kTypeInt:
        def.type = TypeId::kInt64;
        break;
      case TokenType::kTypeDouble:
        def.type = TypeId::kDouble;
        break;
      case TokenType::kTypeString:
        def.type = TypeId::kString;
        break;
      default:
        return Error("expected a column type (INT, DOUBLE, STRING)");
    }
    Advance();
    stmt->columns.push_back(std::move(def));
  } while (Match(TokenType::kComma));
  WSQ_RETURN_IF_ERROR(
      Expect(TokenType::kRParen, "after column list").status());
  if (stmt->columns.empty()) {
    return Error("CREATE TABLE requires at least one column");
  }
  return stmt;
}

Result<std::unique_ptr<CreateIndexStatement>> Parser::ParseCreateIndex() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kCreate, "").status());
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kIndex, "after CREATE").status());
  auto stmt = std::make_unique<CreateIndexStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "index name"));
  stmt->index = name.text;
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kOn, "after index name").status());
  WSQ_ASSIGN_OR_RETURN(Token table,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = table.text;
  WSQ_RETURN_IF_ERROR(
      Expect(TokenType::kLParen, "before column").status());
  WSQ_ASSIGN_OR_RETURN(Token column,
                       Expect(TokenType::kIdentifier, "column name"));
  stmt->column = column.text;
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after column").status());
  return stmt;
}

Result<std::unique_ptr<InsertStatement>> Parser::ParseInsert() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kInsert, "").status());
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kInto, "after INSERT").status());
  auto stmt = std::make_unique<InsertStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = name.text;
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kValues, "after table").status());
  do {
    WSQ_RETURN_IF_ERROR(
        Expect(TokenType::kLParen, "before values tuple").status());
    std::vector<ParsedExprPtr> row;
    do {
      WSQ_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    WSQ_RETURN_IF_ERROR(
        Expect(TokenType::kRParen, "after values tuple").status());
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return stmt;
}

Result<std::unique_ptr<DeleteStatement>> Parser::ParseDelete() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kDelete, "").status());
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kFrom, "after DELETE").status());
  auto stmt = std::make_unique<DeleteStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = name.text;
  if (Match(TokenType::kWhere)) {
    WSQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<DropTableStatement>> Parser::ParseDropTable() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kDrop, "").status());
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kTable, "after DROP").status());
  auto stmt = std::make_unique<DropTableStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = name.text;
  return stmt;
}

Result<std::unique_ptr<UpdateStatement>> Parser::ParseUpdate() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kUpdate, "").status());
  auto stmt = std::make_unique<UpdateStatement>();
  WSQ_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenType::kIdentifier, "table name"));
  stmt->table = name.text;
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kSet, "after table").status());
  do {
    UpdateStatement::Assignment assignment;
    WSQ_ASSIGN_OR_RETURN(Token col,
                         Expect(TokenType::kIdentifier, "column name"));
    assignment.column = col.text;
    WSQ_RETURN_IF_ERROR(
        Expect(TokenType::kEq, "after column name").status());
    WSQ_ASSIGN_OR_RETURN(assignment.value, ParseExpr());
    stmt->assignments.push_back(std::move(assignment));
  } while (Match(TokenType::kComma));
  if (Match(TokenType::kWhere)) {
    WSQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<ExplainStatement>> Parser::ParseExplain() {
  WSQ_RETURN_IF_ERROR(Expect(TokenType::kExplain, "").status());
  auto stmt = std::make_unique<ExplainStatement>();
  stmt->analyze = Match(TokenType::kAnalyze);
  if (Match(TokenType::kAsync)) {
    stmt->async = true;
  } else if (!Match(TokenType::kSync) && stmt->analyze) {
    // ANALYZE runs the query for real, so it follows Execute's default
    // (asynchronous iteration) unless SYNC is spelled out.
    stmt->async = true;
  }
  WSQ_ASSIGN_OR_RETURN(stmt->select, ParseSelectStatement());
  return stmt;
}

Result<ParsedExprPtr> Parser::ParseExpr() {
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAnd());
  while (Match(TokenType::kOr)) {
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseAnd() {
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseNot());
  while (Match(TokenType::kAnd)) {
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr operand, ParseNot());
    return ParsedExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ParsedExprPtr> Parser::ParseComparison() {
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAdditive());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    case TokenType::kLike: op = BinaryOp::kLike; break;
    default:
      return left;
  }
  Advance();
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAdditive());
  return ParsedExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                    std::move(right)));
}

Result<ParsedExprPtr> Parser::ParseAdditive() {
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op = Match(TokenType::kPlus) ? BinaryOp::kAdd
                                          : (Advance(), BinaryOp::kSub);
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseMultiplicative() {
  WSQ_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
         Check(TokenType::kPercent)) {
    BinaryOp op;
    if (Match(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      Advance();
      op = BinaryOp::kMod;
    }
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    WSQ_ASSIGN_OR_RETURN(ParsedExprPtr operand, ParseUnary());
    return ParsedExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<ParsedExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntegerLiteral: {
      int64_t v = Advance().int_value;
      return ParsedExprPtr(std::make_unique<LiteralExpr>(Value::Int(v)));
    }
    case TokenType::kFloatLiteral: {
      double v = Advance().float_value;
      return ParsedExprPtr(std::make_unique<LiteralExpr>(Value::Real(v)));
    }
    case TokenType::kStringLiteral: {
      std::string v = Advance().text;
      return ParsedExprPtr(
          std::make_unique<LiteralExpr>(Value::Str(std::move(v))));
    }
    case TokenType::kNull:
      Advance();
      return ParsedExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
    case TokenType::kStar:
      Advance();
      return ParsedExprPtr(std::make_unique<StarExpr>());
    case TokenType::kLParen: {
      Advance();
      WSQ_ASSIGN_OR_RETURN(ParsedExprPtr inner, ParseExpr());
      WSQ_RETURN_IF_ERROR(
          Expect(TokenType::kRParen, "to close '('").status());
      return inner;
    }
    case TokenType::kIdentifier: {
      std::string first = Advance().text;
      if (Match(TokenType::kDot)) {
        // Qualified column: table.column or table.*
        if (Match(TokenType::kStar)) {
          // table.* is modeled as a StarExpr with qualifier via
          // ColumnRef("*"); keep it simple: qualified star unsupported.
          return Error("qualified * is not supported");
        }
        WSQ_ASSIGN_OR_RETURN(Token col, Expect(TokenType::kIdentifier,
                                               "after '.'"));
        return ParsedExprPtr(
            std::make_unique<ColumnRefExpr>(first, col.text));
      }
      if (Check(TokenType::kLParen)) {
        // Function call.
        Advance();
        std::vector<ParsedExprPtr> args;
        if (!Check(TokenType::kRParen)) {
          do {
            WSQ_ASSIGN_OR_RETURN(ParsedExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Match(TokenType::kComma));
        }
        WSQ_RETURN_IF_ERROR(
            Expect(TokenType::kRParen, "after arguments").status());
        return ParsedExprPtr(
            std::make_unique<FuncExpr>(first, std::move(args)));
      }
      return ParsedExprPtr(std::make_unique<ColumnRefExpr>("", first));
    }
    default:
      return Error(StrFormat(
          "unexpected token %s in expression",
          std::string(TokenTypeToString(t.type)).c_str()));
  }
}

}  // namespace wsq
