#ifndef WSQ_PARSER_PARSER_H_
#define WSQ_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace wsq {

/// Recursive-descent parser for the Redbase-style SQL subset:
///
///   SELECT [DISTINCT] item, ...
///   FROM table [alias], ...
///   [WHERE expr] [GROUP BY expr, ...] [HAVING expr]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
///
///   CREATE TABLE name (col type, ...)
///   INSERT INTO name VALUES (lit, ...), ...
///   EXPLAIN [SYNC|ASYNC] <select>
class Parser {
 public:
  /// Parses a single statement (optionally ';'-terminated).
  static Result<std::unique_ptr<Statement>> Parse(std::string_view sql);

  /// Parses exactly a SELECT statement.
  static Result<std::unique_ptr<SelectStatement>> ParseSelect(
      std::string_view sql);

  /// Parses a standalone scalar expression (used in tests).
  static Result<ParsedExprPtr> ParseExpression(std::string_view sql);

 private:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t);
  Result<Token> Expect(TokenType t, const std::string& context);
  Status Error(const std::string& message) const;

  Result<std::unique_ptr<Statement>> ParseStatement();
  Result<std::unique_ptr<SelectStatement>> ParseSelectStatement();
  Result<std::unique_ptr<CreateTableStatement>> ParseCreateTable();
  Result<std::unique_ptr<CreateIndexStatement>> ParseCreateIndex();
  Result<std::unique_ptr<DropTableStatement>> ParseDropTable();
  Result<std::unique_ptr<InsertStatement>> ParseInsert();
  Result<std::unique_ptr<DeleteStatement>> ParseDelete();
  Result<std::unique_ptr<UpdateStatement>> ParseUpdate();
  Result<std::unique_ptr<ExplainStatement>> ParseExplain();

  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();

  // Precedence-climbing expression grammar.
  Result<ParsedExprPtr> ParseExpr();        // OR
  Result<ParsedExprPtr> ParseAnd();
  Result<ParsedExprPtr> ParseNot();
  Result<ParsedExprPtr> ParseComparison();
  Result<ParsedExprPtr> ParseAdditive();
  Result<ParsedExprPtr> ParseMultiplicative();
  Result<ParsedExprPtr> ParseUnary();
  Result<ParsedExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace wsq

#endif  // WSQ_PARSER_PARSER_H_
