#ifndef WSQ_PARSER_AST_H_
#define WSQ_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace wsq {

/// Operators shared by parsed and bound expressions.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kAnd,
  kOr,
};

enum class UnaryOp {
  kNeg,
  kNot,
};

std::string_view BinaryOpToString(BinaryOp op);
std::string_view UnaryOpToString(UnaryOp op);

/// True for =, <>, <, <=, >, >=.
bool IsComparisonOp(BinaryOp op);

/// Parsed (unbound) expression tree.
class ParsedExpr {
 public:
  enum class Kind {
    kColumnRef,
    kLiteral,
    kUnary,
    kBinary,
    kStar,
    kFunctionCall,
  };

  explicit ParsedExpr(Kind kind) : kind_(kind) {}
  virtual ~ParsedExpr() = default;

  Kind kind() const { return kind_; }

  /// SQL-ish rendering for error messages and plan display.
  virtual std::string ToString() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<ParsedExpr> Clone() const = 0;

 private:
  Kind kind_;
};

using ParsedExprPtr = std::unique_ptr<ParsedExpr>;

/// `name` or `qualifier.name`.
class ColumnRefExpr : public ParsedExpr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : ParsedExpr(Kind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}

  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }

  std::string ToString() const override;
  ParsedExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(qualifier_, name_);
  }

 private:
  std::string qualifier_;
  std::string name_;
};

class LiteralExpr : public ParsedExpr {
 public:
  explicit LiteralExpr(Value value)
      : ParsedExpr(Kind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  std::string ToString() const override { return value_.ToString(); }
  ParsedExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

 private:
  Value value_;
};

class UnaryExpr : public ParsedExpr {
 public:
  UnaryExpr(UnaryOp op, ParsedExprPtr operand)
      : ParsedExpr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ParsedExpr& operand() const { return *operand_; }

  std::string ToString() const override;
  ParsedExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }

 private:
  UnaryOp op_;
  ParsedExprPtr operand_;
};

class BinaryExpr : public ParsedExpr {
 public:
  BinaryExpr(BinaryOp op, ParsedExprPtr left, ParsedExprPtr right)
      : ParsedExpr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ParsedExpr& left() const { return *left_; }
  const ParsedExpr& right() const { return *right_; }

  std::string ToString() const override;
  ParsedExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(),
                                        right_->Clone());
  }

 private:
  BinaryOp op_;
  ParsedExprPtr left_;
  ParsedExprPtr right_;
};

/// `*` in a select list or inside COUNT(*).
class StarExpr : public ParsedExpr {
 public:
  StarExpr() : ParsedExpr(Kind::kStar) {}
  std::string ToString() const override { return "*"; }
  ParsedExprPtr Clone() const override {
    return std::make_unique<StarExpr>();
  }
};

/// `name(args...)` — aggregates (COUNT/SUM/AVG/MIN/MAX) and scalar
/// functions.
class FuncExpr : public ParsedExpr {
 public:
  FuncExpr(std::string name, std::vector<ParsedExprPtr> args)
      : ParsedExpr(Kind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ParsedExprPtr>& args() const { return args_; }

  std::string ToString() const override;
  ParsedExprPtr Clone() const override;

 private:
  std::string name_;
  std::vector<ParsedExprPtr> args_;
};

/// One item in a select list: expression plus optional alias.
struct SelectItem {
  ParsedExprPtr expr;
  std::string alias;
};

/// `table [alias]` in a FROM clause.
struct TableRef {
  std::string table;
  std::string alias;  // empty if none

  /// Name the table is referred to by in the query.
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderByItem {
  ParsedExprPtr expr;
  bool descending = false;
};

/// Top-level statements.
class Statement {
 public:
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kInsert,
    kDelete,
    kUpdate,
    kExplain,
  };

  explicit Statement(Kind kind) : kind_(kind) {}
  virtual ~Statement() = default;

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

class SelectStatement : public Statement {
 public:
  SelectStatement() : Statement(Kind::kSelect) {}

  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  ParsedExprPtr where;  // null if absent
  std::vector<ParsedExprPtr> group_by;
  ParsedExprPtr having;  // null if absent
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
};

struct ColumnDef {
  std::string name;
  TypeId type;
};

class CreateTableStatement : public Statement {
 public:
  CreateTableStatement() : Statement(Kind::kCreateTable) {}

  std::string table;
  std::vector<ColumnDef> columns;
};

class InsertStatement : public Statement {
 public:
  InsertStatement() : Statement(Kind::kInsert) {}

  std::string table;
  /// One entry per VALUES tuple; each value is a literal or signed
  /// literal expression.
  std::vector<std::vector<ParsedExprPtr>> rows;
};

/// DELETE FROM table [WHERE expr].
class DeleteStatement : public Statement {
 public:
  DeleteStatement() : Statement(Kind::kDelete) {}

  std::string table;
  ParsedExprPtr where;  // null deletes every row
};

/// CREATE INDEX name ON table (column).
class CreateIndexStatement : public Statement {
 public:
  CreateIndexStatement() : Statement(Kind::kCreateIndex) {}

  std::string index;
  std::string table;
  std::string column;
};

/// DROP TABLE name.
class DropTableStatement : public Statement {
 public:
  DropTableStatement() : Statement(Kind::kDropTable) {}

  std::string table;
};

/// UPDATE table SET col = expr [, ...] [WHERE expr].
class UpdateStatement : public Statement {
 public:
  UpdateStatement() : Statement(Kind::kUpdate) {}

  struct Assignment {
    std::string column;
    ParsedExprPtr value;
  };

  std::string table;
  std::vector<Assignment> assignments;
  ParsedExprPtr where;  // null updates every row
};

/// EXPLAIN [ANALYZE] [SYNC|ASYNC] <select>. Plain EXPLAIN prints the
/// physical plan (after the asynchronous-iteration rewrite when
/// ASYNC). EXPLAIN ANALYZE actually runs the query and prints the plan
/// annotated with per-operator profiles; it defaults to ASYNC, like
/// normal execution.
class ExplainStatement : public Statement {
 public:
  ExplainStatement() : Statement(Kind::kExplain) {}

  bool analyze = false;
  bool async = false;
  std::unique_ptr<SelectStatement> select;
};

}  // namespace wsq

#endif  // WSQ_PARSER_AST_H_
