#include "parser/ast.h"

namespace wsq {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::string_view UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "NOT ";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

std::string ColumnRefExpr::ToString() const {
  if (qualifier_.empty()) return name_;
  return qualifier_ + "." + name_;
}

std::string UnaryExpr::ToString() const {
  return std::string(UnaryOpToString(op_)) + "(" + operand_->ToString() +
         ")";
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " +
         std::string(BinaryOpToString(op_)) + " " + right_->ToString() +
         ")";
}

std::string FuncExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

ParsedExprPtr FuncExpr::Clone() const {
  std::vector<ParsedExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<FuncExpr>(name_, std::move(args));
}

}  // namespace wsq
