#include "parser/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

std::string_view TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kEof: return "<eof>";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kStringLiteral: return "string";
    case TokenType::kIntegerLiteral: return "integer";
    case TokenType::kFloatLiteral: return "float";
    case TokenType::kSelect: return "SELECT";
    case TokenType::kDistinct: return "DISTINCT";
    case TokenType::kFrom: return "FROM";
    case TokenType::kWhere: return "WHERE";
    case TokenType::kAnd: return "AND";
    case TokenType::kOr: return "OR";
    case TokenType::kNot: return "NOT";
    case TokenType::kOrder: return "ORDER";
    case TokenType::kGroup: return "GROUP";
    case TokenType::kBy: return "BY";
    case TokenType::kAsc: return "ASC";
    case TokenType::kDesc: return "DESC";
    case TokenType::kLimit: return "LIMIT";
    case TokenType::kAs: return "AS";
    case TokenType::kNull: return "NULL";
    case TokenType::kCreate: return "CREATE";
    case TokenType::kTable: return "TABLE";
    case TokenType::kInsert: return "INSERT";
    case TokenType::kDelete: return "DELETE";
    case TokenType::kUpdate: return "UPDATE";
    case TokenType::kSet: return "SET";
    case TokenType::kIndex: return "INDEX";
    case TokenType::kOn: return "ON";
    case TokenType::kDrop: return "DROP";
    case TokenType::kLike: return "LIKE";
    case TokenType::kInto: return "INTO";
    case TokenType::kValues: return "VALUES";
    case TokenType::kExplain: return "EXPLAIN";
    case TokenType::kAnalyze: return "ANALYZE";
    case TokenType::kAsync: return "ASYNC";
    case TokenType::kSync: return "SYNC";
    case TokenType::kHaving: return "HAVING";
    case TokenType::kTypeInt: return "INT";
    case TokenType::kTypeDouble: return "DOUBLE";
    case TokenType::kTypeString: return "STRING";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kSemicolon: return ";";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
  }
  return "<unknown>";
}

namespace {

TokenType KeywordType(const std::string& upper) {
  static const auto* const kKeywords =
      new std::unordered_map<std::string, TokenType>{
          {"SELECT", TokenType::kSelect},
          {"DISTINCT", TokenType::kDistinct},
          {"FROM", TokenType::kFrom},
          {"WHERE", TokenType::kWhere},
          {"AND", TokenType::kAnd},
          {"OR", TokenType::kOr},
          {"NOT", TokenType::kNot},
          {"ORDER", TokenType::kOrder},
          {"GROUP", TokenType::kGroup},
          {"BY", TokenType::kBy},
          {"ASC", TokenType::kAsc},
          {"DESC", TokenType::kDesc},
          {"LIMIT", TokenType::kLimit},
          {"AS", TokenType::kAs},
          {"NULL", TokenType::kNull},
          {"CREATE", TokenType::kCreate},
          {"TABLE", TokenType::kTable},
          {"INSERT", TokenType::kInsert},
          {"DELETE", TokenType::kDelete},
          {"UPDATE", TokenType::kUpdate},
          {"SET", TokenType::kSet},
          {"INDEX", TokenType::kIndex},
          {"ON", TokenType::kOn},
          {"DROP", TokenType::kDrop},
          {"LIKE", TokenType::kLike},
          {"INTO", TokenType::kInto},
          {"VALUES", TokenType::kValues},
          {"EXPLAIN", TokenType::kExplain},
          {"ANALYZE", TokenType::kAnalyze},
          {"ASYNC", TokenType::kAsync},
          {"SYNC", TokenType::kSync},
          {"HAVING", TokenType::kHaving},
          {"INT", TokenType::kTypeInt},
          {"INTEGER", TokenType::kTypeInt},
          {"BIGINT", TokenType::kTypeInt},
          {"DOUBLE", TokenType::kTypeDouble},
          {"FLOAT", TokenType::kTypeDouble},
          {"REAL", TokenType::kTypeDouble},
          {"STRING", TokenType::kTypeString},
          {"TEXT", TokenType::kTypeString},
          {"VARCHAR", TokenType::kTypeString},
      };
  auto it = kKeywords->find(upper);
  return it == kKeywords->end() ? TokenType::kIdentifier : it->second;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::Error(const std::string& message) const {
  return Status::ParseError(
      StrFormat("%s at line %d column %d", message.c_str(), line_, column_));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(Token tok, NextToken());
    bool eof = tok.type == TokenType::kEof;
    tokens.push_back(std::move(tok));
    if (eof) break;
  }
  return tokens;
}

Result<Token> Lexer::NextToken() {
  // Skip whitespace and comments.
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }

  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (AtEnd()) {
    tok.type = TokenType::kEof;
    return tok;
  }

  char c = Peek();

  if (IsIdentStart(c)) {
    std::string text;
    while (!AtEnd() && IsIdentChar(Peek())) text.push_back(Advance());
    tok.type = KeywordType(ToUpper(text));
    tok.text = std::move(text);
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    std::string text;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t save = pos_;
      std::string exp;
      exp.push_back(Advance());
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        exp.push_back(Advance());
      }
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(Peek()))) {
          exp.push_back(Advance());
        }
        text += exp;
        is_float = true;
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    tok.text = text;
    if (is_float) {
      tok.type = TokenType::kFloatLiteral;
      tok.float_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntegerLiteral;
      errno = 0;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) return Error("integer literal out of range");
    }
    return tok;
  }

  if (c == '\'') {
    Advance();  // opening quote
    std::string text;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char ch = Advance();
      if (ch == '\'') {
        if (Peek() == '\'') {
          text.push_back('\'');
          Advance();
        } else {
          break;
        }
      } else {
        text.push_back(ch);
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Advance();
  switch (c) {
    case ',': tok.type = TokenType::kComma; return tok;
    case '.': tok.type = TokenType::kDot; return tok;
    case ';': tok.type = TokenType::kSemicolon; return tok;
    case '(': tok.type = TokenType::kLParen; return tok;
    case ')': tok.type = TokenType::kRParen; return tok;
    case '*': tok.type = TokenType::kStar; return tok;
    case '+': tok.type = TokenType::kPlus; return tok;
    case '-': tok.type = TokenType::kMinus; return tok;
    case '/': tok.type = TokenType::kSlash; return tok;
    case '%': tok.type = TokenType::kPercent; return tok;
    case '=': tok.type = TokenType::kEq; return tok;
    case '!':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kNe;
        return tok;
      }
      return Error("unexpected character '!'");
    case '<':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kLe;
      } else if (Peek() == '>') {
        Advance();
        tok.type = TokenType::kNe;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kGe;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    default:
      return Error(StrFormat("unexpected character '%c'", c));
  }
}

}  // namespace wsq
