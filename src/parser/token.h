#ifndef WSQ_PARSER_TOKEN_H_
#define WSQ_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace wsq {

enum class TokenType {
  kEof = 0,
  // Literals and names.
  kIdentifier,
  kStringLiteral,
  kIntegerLiteral,
  kFloatLiteral,
  // Keywords.
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kOrder,
  kGroup,
  kBy,
  kAsc,
  kDesc,
  kLimit,
  kAs,
  kNull,
  kCreate,
  kTable,
  kInsert,
  kInto,
  kDelete,
  kUpdate,
  kSet,
  kIndex,
  kOn,
  kDrop,
  kLike,
  kValues,
  kExplain,
  kAnalyze,
  kAsync,
  kSync,
  kHaving,
  // Type names.
  kTypeInt,
  kTypeDouble,
  kTypeString,
  // Punctuation and operators.
  kComma,
  kDot,
  kSemicolon,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

std::string_view TokenTypeToString(TokenType t);

struct Token {
  TokenType type = TokenType::kEof;
  /// Raw text for identifiers; unescaped content for string literals.
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  /// 1-based position in the input for error messages.
  int line = 1;
  int column = 1;
};

}  // namespace wsq

#endif  // WSQ_PARSER_TOKEN_H_
