#ifndef WSQ_WEB_DOCUMENT_H_
#define WSQ_WEB_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsq {

/// Document id within a corpus; dense from 0.
using DocId = uint32_t;

/// One synthetic Web page: a URL, a last-modified date, and a token
/// stream (already lower-cased and tokenized — the corpus generator
/// produces tokens directly instead of rendering HTML and re-parsing it).
struct Document {
  DocId id = 0;
  std::string url;
  std::string date;  // "1999-10-17" style
  std::vector<std::string> terms;
};

/// Lower-cases and splits `text` into alphanumeric tokens, the same
/// normalization applied to documents at indexing time.
std::vector<std::string> TokenizeText(std::string_view text);

}  // namespace wsq

#endif  // WSQ_WEB_DOCUMENT_H_
