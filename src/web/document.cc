#include "web/document.h"

#include <cctype>

namespace wsq {

std::vector<std::string> TokenizeText(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace wsq
