#include "web/corpus.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace wsq {

namespace {

// Pronounceable synthetic words: alternating consonant/vowel syllables.
std::string MakeWord(Rng& rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnprstvwz";
  static constexpr char kVowels[] = "aeiou";
  size_t syllables = 2 + rng.Uniform(3);
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[rng.Uniform(sizeof(kConsonants) - 1)]);
    word.push_back(kVowels[rng.Uniform(sizeof(kVowels) - 1)]);
  }
  return word;
}

// Weighted pick over specs; `total` is the precomputed weight sum.
template <typename Spec>
const Spec& PickWeighted(const std::vector<Spec>& specs, double total,
                         Rng& rng) {
  double u = rng.NextDouble() * total;
  for (const Spec& s : specs) {
    u -= s.weight;
    if (u <= 0) return s;
  }
  return specs.back();
}

void InsertPhraseAt(std::vector<std::string>* terms, size_t pos,
                    const std::vector<std::string>& phrase) {
  pos = std::min(pos, terms->size());
  terms->insert(terms->begin() + static_cast<ptrdiff_t>(pos),
                phrase.begin(), phrase.end());
}

}  // namespace

std::vector<std::string> MakeSyntheticVocabulary(size_t n, uint64_t seed) {
  Rng rng(seed ^ 0x5eedbeef);
  std::set<std::string> unique;
  std::vector<std::string> vocab;
  vocab.reserve(n);
  while (vocab.size() < n) {
    std::string w = MakeWord(rng);
    if (unique.insert(w).second) vocab.push_back(std::move(w));
  }
  return vocab;
}

Corpus Corpus::Generate(
    const CorpusConfig& config, const std::vector<EntitySpec>& entities,
    const std::vector<CooccurrenceSpec>& cooccurrences) {
  Corpus corpus;
  corpus.vocabulary_ =
      MakeSyntheticVocabulary(config.vocab_size, config.seed);
  Rng rng(config.seed);
  ZipfDistribution zipf(config.vocab_size, config.zipf_skew);

  double entity_total = 0;
  for (const EntitySpec& e : entities) entity_total += e.weight;
  double cooc_total = 0;
  for (const CooccurrenceSpec& c : cooccurrences) cooc_total += c.weight;

  // Pre-tokenize all planted phrases once.
  std::vector<std::vector<std::string>> entity_tokens;
  entity_tokens.reserve(entities.size());
  for (const EntitySpec& e : entities) {
    entity_tokens.push_back(TokenizeText(e.phrase));
  }
  struct CoocTokens {
    std::vector<std::string> a;
    std::vector<std::string> b;
    std::vector<std::string> c;  // empty for pairs
  };
  std::vector<CoocTokens> cooc_tokens;
  cooc_tokens.reserve(cooccurrences.size());
  for (const CooccurrenceSpec& c : cooccurrences) {
    cooc_tokens.push_back(CoocTokens{TokenizeText(c.a), TokenizeText(c.b),
                                     TokenizeText(c.c)});
  }

  corpus.documents_.reserve(config.num_documents);
  for (size_t d = 0; d < config.num_documents; ++d) {
    Document doc;
    doc.id = static_cast<DocId>(d);

    size_t length = config.min_doc_length +
                    rng.Uniform(config.max_doc_length -
                                config.min_doc_length + 1);
    doc.terms.reserve(length + 8);
    for (size_t i = 0; i < length; ++i) {
      doc.terms.push_back(corpus.vocabulary_[zipf.Sample(rng)]);
    }

    // Plant entity mentions.
    if (!entities.empty()) {
      for (int m = 0; m < config.max_entity_mentions; ++m) {
        if (!rng.Bernoulli(config.entity_rate)) continue;
        size_t idx = static_cast<size_t>(
            &PickWeighted(entities, entity_total, rng) - entities.data());
        InsertPhraseAt(&doc.terms, rng.Uniform(doc.terms.size() + 1),
                       entity_tokens[idx]);
      }
    }

    // Plant one NEAR co-occurrence in a fraction of documents.
    if (!cooccurrences.empty() && rng.Bernoulli(config.cooc_rate)) {
      size_t idx = static_cast<size_t>(
          &PickWeighted(cooccurrences, cooc_total, rng) -
          cooccurrences.data());
      const CoocTokens& tokens = cooc_tokens[idx];
      size_t window = config.near_window > 1 ? config.near_window - 1 : 1;
      size_t pos = rng.Uniform(doc.terms.size() + 1);
      InsertPhraseAt(&doc.terms, pos, tokens.a);
      size_t gap = 1 + rng.Uniform(window);
      size_t b_pos = pos + tokens.a.size() + gap;
      InsertPhraseAt(&doc.terms, b_pos, tokens.b);
      if (!tokens.c.empty()) {
        size_t gap2 = 1 + rng.Uniform(window);
        InsertPhraseAt(&doc.terms, b_pos + tokens.b.size() + gap2,
                       tokens.c);
      }
    }

    // Deterministic URL and date.
    const std::string& site =
        corpus.vocabulary_[rng.Uniform(corpus.vocabulary_.size())];
    const std::string& path =
        corpus.vocabulary_[rng.Uniform(corpus.vocabulary_.size())];
    doc.url = StrFormat("www.%s%llu.com/%s/p%u.html", site.c_str(),
                        static_cast<unsigned long long>(rng.Uniform(100)),
                        path.c_str(), doc.id);
    doc.date = StrFormat("1999-%02llu-%02llu",
                         static_cast<unsigned long long>(1 +
                                                         rng.Uniform(12)),
                         static_cast<unsigned long long>(1 +
                                                         rng.Uniform(28)));

    corpus.documents_.push_back(std::move(doc));
  }
  return corpus;
}

size_t Corpus::ShardOf(DocId id, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // SplitMix64 finalizer: decorrelates the dense ids so shard loads are
  // balanced regardless of how documents were generated.
  uint64_t x = static_cast<uint64_t>(id) + 0x9E3779B97f4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return static_cast<size_t>(x % num_shards);
}

Corpus Corpus::ShardSlice(const Corpus& full, size_t shard,
                          size_t num_shards) {
  Corpus slice;
  slice.vocabulary_ = full.vocabulary_;
  slice.documents_.reserve(full.documents_.size());
  for (const Document& doc : full.documents_) {
    if (ShardOf(doc.id, num_shards) == shard) {
      slice.documents_.push_back(doc);
    } else {
      // Keep the slot so DocIds stay dense (scores hash the id), but
      // strip the content: a blank doc yields no postings.
      Document blank;
      blank.id = doc.id;
      slice.documents_.push_back(std::move(blank));
    }
  }
  return slice;
}

}  // namespace wsq
