#ifndef WSQ_WEB_CORPUS_H_
#define WSQ_WEB_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "web/document.h"

namespace wsq {

/// A named phrase to plant in the corpus; `weight` scales how often it
/// is mentioned relative to other entities (any positive scale).
struct EntitySpec {
  std::string phrase;
  double weight = 1.0;
};

/// Requests that `a` appear NEAR `b` (and optionally NEAR `c`) in a
/// share of documents proportional to `weight` — this is how the
/// synthetic Web gets the paper's "Colorado near four corners" signal
/// (§3.1 Query 3) and the DSQ state/movie/phrase triples (§1).
struct CooccurrenceSpec {
  std::string a;
  std::string b;
  double weight = 1.0;
  /// Optional third phrase planted NEAR `b` (empty = pair only).
  std::string c;
};

struct CorpusConfig {
  /// Number of documents to generate.
  size_t num_documents = 20000;
  /// Token count per document is uniform in [min, max].
  size_t min_doc_length = 40;
  size_t max_doc_length = 200;
  /// Background vocabulary: synthetic words drawn Zipf(zipf_skew).
  size_t vocab_size = 4000;
  double zipf_skew = 1.05;
  /// Per-document entity injection: up to `max_entity_mentions` rounds,
  /// each happening with probability `entity_rate`.
  double entity_rate = 0.55;
  int max_entity_mentions = 3;
  /// Fraction of documents that realize one co-occurrence spec.
  double cooc_rate = 0.08;
  /// Tokens within which NEAR co-occurrences are planted.
  size_t near_window = 6;
  uint64_t seed = 42;
};

/// A deterministic synthetic Web: documents with Zipf background text
/// and planted entity mentions / co-occurrences.
///
/// This substitutes for the live 1999 Web crawled by AltaVista/Google
/// (see DESIGN.md §2): it supplies what WSQ actually consumes — skewed
/// mention counts, NEAR co-occurrence structure, and stable URLs.
class Corpus {
 public:
  /// Generates a corpus. Entity phrases are tokenized with the same
  /// normalization as queries, so lookups match exactly.
  static Corpus Generate(
      const CorpusConfig& config,
      const std::vector<EntitySpec>& entities,
      const std::vector<CooccurrenceSpec>& cooccurrences = {});

  /// The slice of `full` owned by shard `shard` of `num_shards`:
  /// documents keep their dense DocIds (so per-shard scores and ranks
  /// merge byte-identically with the unsharded engine), but docs owned
  /// by other shards are blanked — no terms, so they produce no
  /// postings and match nothing. Ownership is ShardOf(id, num_shards),
  /// a seed-independent hash, so the union over all shards is exactly
  /// `full` and the slices are pairwise disjoint.
  static Corpus ShardSlice(const Corpus& full, size_t shard,
                           size_t num_shards);

  /// Which shard owns document `id` under `num_shards`-way hash
  /// partitioning (SplitMix64 finalizer of the id, mod N).
  static size_t ShardOf(DocId id, size_t num_shards);

  size_t size() const { return documents_.size(); }
  const Document& document(DocId id) const { return documents_[id]; }
  const std::vector<Document>& documents() const { return documents_; }

  /// The background vocabulary (for tests and workload generators).
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  std::vector<Document> documents_;
  std::vector<std::string> vocabulary_;
};

/// Builds the `n`-word synthetic background vocabulary used by
/// Corpus::Generate; exposed for tests and workload constant pools.
std::vector<std::string> MakeSyntheticVocabulary(size_t n, uint64_t seed);

}  // namespace wsq

#endif  // WSQ_WEB_CORPUS_H_
