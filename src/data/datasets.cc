#include "data/datasets.h"

#include <cmath>

namespace wsq {

const std::vector<StateRecord>& UsStates1998() {
  static const std::vector<StateRecord>* const kStates =
      new std::vector<StateRecord>{
          {"Alabama", 4352000, "Montgomery"},
          {"Alaska", 614000, "Juneau"},
          {"Arizona", 4669000, "Phoenix"},
          {"Arkansas", 2538000, "Little Rock"},
          {"California", 32667000, "Sacramento"},
          {"Colorado", 3971000, "Denver"},
          {"Connecticut", 3274000, "Hartford"},
          {"Delaware", 744000, "Dover"},
          {"Florida", 14916000, "Tallahassee"},
          {"Georgia", 7642000, "Atlanta"},
          {"Hawaii", 1193000, "Honolulu"},
          {"Idaho", 1229000, "Boise"},
          {"Illinois", 12045000, "Springfield"},
          {"Indiana", 5899000, "Indianapolis"},
          {"Iowa", 2862000, "Des Moines"},
          {"Kansas", 2629000, "Topeka"},
          {"Kentucky", 3936000, "Frankfort"},
          {"Louisiana", 4369000, "Baton Rouge"},
          {"Maine", 1244000, "Augusta"},
          {"Maryland", 5135000, "Annapolis"},
          {"Massachusetts", 6147000, "Boston"},
          {"Michigan", 9817000, "Lansing"},
          {"Minnesota", 4725000, "Saint Paul"},
          {"Mississippi", 2752000, "Jackson"},
          {"Missouri", 5439000, "Jefferson City"},
          {"Montana", 880000, "Helena"},
          {"Nebraska", 1663000, "Lincoln"},
          {"Nevada", 1747000, "Carson City"},
          {"New Hampshire", 1185000, "Concord"},
          {"New Jersey", 8115000, "Trenton"},
          {"New Mexico", 1737000, "Santa Fe"},
          {"New York", 18175000, "Albany"},
          {"North Carolina", 7546000, "Raleigh"},
          {"North Dakota", 638000, "Bismarck"},
          {"Ohio", 11209000, "Columbus"},
          {"Oklahoma", 3347000, "Oklahoma City"},
          {"Oregon", 3282000, "Salem"},
          {"Pennsylvania", 12001000, "Harrisburg"},
          {"Rhode Island", 988000, "Providence"},
          {"South Carolina", 3836000, "Columbia"},
          {"South Dakota", 738000, "Pierre"},
          {"Tennessee", 5431000, "Nashville"},
          {"Texas", 19760000, "Austin"},
          {"Utah", 2100000, "Salt Lake City"},
          {"Vermont", 591000, "Montpelier"},
          {"Virginia", 6791000, "Richmond"},
          {"Washington", 5689000, "Olympia"},
          {"West Virginia", 1811000, "Charleston"},
          {"Wisconsin", 5224000, "Madison"},
          {"Wyoming", 481000, "Cheyenne"},
      };
  return *kStates;
}

const std::vector<std::string>& AcmSigs() {
  static const std::vector<std::string>* const kSigs =
      new std::vector<std::string>{
          "SIGACT",    "SIGAda",   "SIGAPL",     "SIGAPP",  "SIGARCH",
          "SIGART",    "SIGBIO",   "SIGCAPH",    "SIGCAS",  "SIGCHI",
          "SIGCOMM",   "SIGCPR",   "SIGCSE",     "SIGCUE",  "SIGDA",
          "SIGDOC",    "SIGGRAPH", "SIGGROUP",   "SIGIR",   "SIGKDD",
          "SIGMETRICS", "SIGMICRO", "SIGMIS",    "SIGMOBILE", "SIGMOD",
          "SIGMM",     "SIGNUM",   "SIGOPS",     "SIGPLAN", "SIGSAC",
          "SIGSAM",    "SIGSIM",   "SIGSMALL",   "SIGSOFT", "SIGUCCS",
          "SIGWEB",    "SIGecom",
      };
  return *kSigs;
}

const std::vector<std::string>& CsFields() {
  static const std::vector<std::string>* const kFields =
      new std::vector<std::string>{
          "databases",
          "operating systems",
          "artificial intelligence",
          "computer graphics",
          "programming languages",
          "information retrieval",
          "computer networks",
          "software engineering",
          "machine learning",
          "theory of computation",
      };
  return *kFields;
}

const std::vector<std::string>& MovieTitles() {
  static const std::vector<std::string>* const kMovies =
      new std::vector<std::string>{
          "Deep Descent",     "Coral Kingdom",  "The Last Reef",
          "Silent Depths",    "Midnight Harbor", "Desert Mirage",
          "Mountain Echo",    "Prairie Storm",  "The Gold Rush Trail",
          "City of Lanterns",
      };
  return *kMovies;
}

const std::vector<std::string>& TemplateConstants() {
  static const std::vector<std::string>* const kConstants =
      new std::vector<std::string>{
          "computer", "beaches",  "crime",    "politics",
          "frogs",    "tourism",  "weather",  "history",
          "music",    "football", "lakes",    "deserts",
          "goldmines", "festival", "wildlife", "canyons",
      };
  return *kConstants;
}

PaperCorpusSpec MakePaperCorpusSpec() {
  PaperCorpusSpec spec;

  // --- States: mention weight grows sublinearly with population, with
  // prominence boosts that reproduce the paper's Query 1 top ranks and
  // keep small states (Alaska, Wyoming, ...) on top per capita.
  for (const StateRecord& s : UsStates1998()) {
    double w = std::sqrt(static_cast<double>(s.population)) / 300.0;
    if (s.name == "California") w *= 2.6;
    if (s.name == "Washington") w *= 4.4;  // state + U.S. capital hits
    if (s.name == "New York") w *= 2.4;
    if (s.name == "Texas") w *= 1.8;
    if (s.name == "Michigan") w *= 1.5;
    // Per-capita leaders (paper Query 2): small states mentioned far
    // more than population alone would predict.
    if (s.name == "Alaska") w *= 4.0;
    if (s.name == "Hawaii") w *= 2.8;
    if (s.name == "Delaware") w *= 2.4;
    if (s.name == "Wyoming") w *= 2.2;
    spec.entities.push_back(EntitySpec{s.name, w});

    // Capitals: generally rarer than their states...
    double cw = 0.35 * w;
    // ...except the six common-word capitals from Query 4's complete
    // result (Columbia, Lincoln, Jackson, Boston, Atlanta, Pierre).
    if (s.capital == "Atlanta") cw = w * 1.35;
    if (s.capital == "Lincoln") cw = w * 2.1;
    if (s.capital == "Boston") cw = w * 1.6;
    if (s.capital == "Jackson") cw = w * 2.0;
    if (s.capital == "Pierre") cw = w * 2.6;
    if (s.capital == "Columbia") cw = w * 3.4;
    spec.entities.push_back(EntitySpec{s.capital, cw});
  }

  // --- ACM SIGs: modest, skewed mention weights.
  {
    double w = 3.0;
    for (const std::string& sig : AcmSigs()) {
      spec.entities.push_back(EntitySpec{sig, w});
      w *= 0.93;
      if (w < 0.4) w = 0.4;
    }
  }

  // --- CS fields, movies, template constants.
  for (const std::string& f : CsFields()) {
    spec.entities.push_back(EntitySpec{f, 4.0});
  }
  for (const std::string& m : MovieTitles()) {
    spec.entities.push_back(EntitySpec{m, 1.2});
  }
  for (const std::string& c : TemplateConstants()) {
    spec.entities.push_back(EntitySpec{c, 6.0});
  }
  spec.entities.push_back(EntitySpec{"four corners", 0.8});
  spec.entities.push_back(EntitySpec{"scuba diving", 2.0});
  spec.entities.push_back(EntitySpec{"Knuth", 0.8});

  // --- Query 3: the four-corners states, with the paper's sharp
  // dropoff after the fourth (1745/1249/1095/994 vs 215).
  spec.cooccurrences.push_back({"Colorado", "four corners", 88.0});
  spec.cooccurrences.push_back({"New Mexico", "four corners", 63.0});
  spec.cooccurrences.push_back({"Arizona", "four corners", 55.0});
  spec.cooccurrences.push_back({"Utah", "four corners", 50.0});
  spec.cooccurrences.push_back({"California", "four corners", 2.0});

  // --- §4.1 footnote 3: Sigs near "Knuth", in the paper's order.
  spec.cooccurrences.push_back({"SIGACT", "Knuth", 44.0});
  spec.cooccurrences.push_back({"SIGPLAN", "Knuth", 22.0});
  spec.cooccurrences.push_back({"SIGGRAPH", "Knuth", 13.0});
  spec.cooccurrences.push_back({"SIGMOD", "Knuth", 10.0});
  spec.cooccurrences.push_back({"SIGCOMM", "Knuth", 7.0});
  spec.cooccurrences.push_back({"SIGSAM", "Knuth", 5.0});

  // --- DSQ scenario: coastal states and diving movies near the phrase.
  spec.cooccurrences.push_back({"Florida", "scuba diving", 9.0});
  spec.cooccurrences.push_back({"Hawaii", "scuba diving", 7.0});
  spec.cooccurrences.push_back({"California", "scuba diving", 5.0});
  spec.cooccurrences.push_back({"Deep Descent", "scuba diving", 6.0});
  spec.cooccurrences.push_back({"Coral Kingdom", "scuba diving", 4.0});
  spec.cooccurrences.push_back({"Silent Depths", "scuba diving", 3.0});
  // Triple: "an underwater thriller filmed in Florida" (§1) — plants
  // Florida NEAR Deep Descent NEAR scuba diving in one document.
  spec.cooccurrences.push_back(
      {"Florida", "Deep Descent", 4.0, "scuba diving"});

  // --- Table 1 template constants near a spread of states so the
  // benchmark queries return non-trivial counts.
  {
    const auto& states = UsStates1998();
    const auto& constants = TemplateConstants();
    for (size_t c = 0; c < constants.size(); ++c) {
      for (size_t k = 0; k < 8; ++k) {
        const StateRecord& s = states[(c * 7 + k * 5) % states.size()];
        double w = 2.5 - 0.2 * static_cast<double>(k);
        spec.cooccurrences.push_back({s.name, constants[c], w});
      }
    }
  }

  // --- Template 3 pairs Sigs with the constant pool; plant enough
  // co-occurrence that most Sigs have hits (as the live Web did),
  // so the sequential baseline performs the full two-engine call load.
  {
    const auto& sigs = AcmSigs();
    const auto& constants = TemplateConstants();
    for (size_t c = 0; c < constants.size(); ++c) {
      for (size_t k = 0; k < 12; ++k) {
        const std::string& sig = sigs[(c * 5 + k * 3) % sigs.size()];
        spec.cooccurrences.push_back({sig, constants[c], 1.6});
      }
    }
  }

  // --- CS fields near SIGs (for the §4.5.4 Example 3 query).
  spec.cooccurrences.push_back({"SIGMOD", "databases", 5.0});
  spec.cooccurrences.push_back({"SIGOPS", "operating systems", 5.0});
  spec.cooccurrences.push_back({"SIGART", "artificial intelligence", 4.0});
  spec.cooccurrences.push_back({"SIGGRAPH", "computer graphics", 4.0});
  spec.cooccurrences.push_back({"SIGPLAN", "programming languages", 4.0});
  spec.cooccurrences.push_back({"SIGIR", "information retrieval", 4.0});
  spec.cooccurrences.push_back({"SIGCOMM", "computer networks", 4.0});
  spec.cooccurrences.push_back({"SIGSOFT", "software engineering", 4.0});

  return spec;
}

CorpusConfig DefaultPaperCorpusConfig() {
  CorpusConfig config;
  config.num_documents = 20000;
  config.min_doc_length = 40;
  config.max_doc_length = 200;
  config.vocab_size = 4000;
  config.seed = 42;
  config.entity_rate = 0.55;
  config.max_entity_mentions = 3;
  config.cooc_rate = 0.14;
  return config;
}

Corpus MakePaperCorpus(const CorpusConfig& config) {
  PaperCorpusSpec spec = MakePaperCorpusSpec();
  return Corpus::Generate(config, std::move(spec.entities),
                          std::move(spec.cooccurrences));
}

}  // namespace wsq
