#ifndef WSQ_DATA_DATASETS_H_
#define WSQ_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "web/corpus.h"

namespace wsq {

/// One row of the paper's States(Name, Population, Capital) table.
/// Populations are July 1998 U.S. Census Bureau estimates [Uni98]
/// (rounded; the paper's Query 2 uses the same source).
struct StateRecord {
  std::string name;
  int64_t population;
  std::string capital;
};

/// All 50 U.S. states.
const std::vector<StateRecord>& UsStates1998();

/// The 37 ACM Special Interest Groups circa 1999 (paper §4.1:
/// "37 tuples for the 37 ACM Sigs").
const std::vector<std::string>& AcmSigs();

/// Computer-science fields for the paper's CSFields(Name) table (§4.5.4
/// Example 3).
const std::vector<std::string>& CsFields();

/// Movie titles for the DSQ scenario (§1: "states and the movies that
/// appear on the Web most often near the phrase 'scuba diving'").
const std::vector<std::string>& MovieTitles();

/// Constant pool for the Table 1 query templates ("computer",
/// "beaches", "crime", "politics", "frogs", ...; §5). 16 distinct
/// values — Template 2 draws two disjoint sets of 8.
const std::vector<std::string>& TemplateConstants();

/// Entity and co-occurrence specs that give the synthetic Web the
/// paper's observable structure:
///  - state mention counts correlated with prominence (Query 1 order:
///    California, Washington, New York, Texas, Michigan up top);
///  - Alaska & friends dominating the per-capita ranking (Query 2);
///  - "four corners" near Colorado > New Mexico > Arizona > Utah with a
///    sharp drop after the fourth (Query 3);
///  - six capitals (Atlanta, Lincoln, Boston, Jackson, Pierre,
///    Columbia) outscoring their states (Query 4's complete result);
///  - "Knuth" near SIGACT > SIGPLAN > SIGGRAPH > SIGMOD > SIGCOMM >
///    SIGSAM and nowhere else (§4.1 footnote 3);
///  - "scuba diving" near coastal states and diving movies (DSQ, §1);
///  - every template constant co-occurring with a spread of states.
struct PaperCorpusSpec {
  std::vector<EntitySpec> entities;
  std::vector<CooccurrenceSpec> cooccurrences;
};
PaperCorpusSpec MakePaperCorpusSpec();

/// Generates the standard synthetic Web used by tests, examples, and
/// benches. Pass a config to control size/seed; entities/co-occurrences
/// come from MakePaperCorpusSpec().
Corpus MakePaperCorpus(const CorpusConfig& config);

/// Default corpus configuration (20k documents, seed 42).
CorpusConfig DefaultPaperCorpusConfig();

}  // namespace wsq

#endif  // WSQ_DATA_DATASETS_H_
