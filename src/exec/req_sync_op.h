#ifndef WSQ_EXEC_REQ_SYNC_OP_H_
#define WSQ_EXEC_REQ_SYNC_OP_H_

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "async/req_pump.h"
#include "common/memory.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace wsq {

/// The paper's ReqSync operator (§4.1, §4.3–4.4).
///
/// Open() drains the child, buffering incomplete tuples indexed by the
/// pending calls they wait on; complete tuples pass straight to the
/// ready queue. Next() serves ready tuples, blocking on ReqPump
/// completions otherwise. When a call completes with n result rows,
/// each waiting tuple is cancelled (n=0), completed (n=1), or
/// proliferated into n patched copies (n>1) — copies inherit
/// placeholders for other still-pending calls (§4.4).
///
/// A call that completes with an ERROR (engine failure, deadline
/// exceeded) is handled per the node's OnCallError policy: fail the
/// query, cancel the waiting tuples, or complete them with NULLs.
///
/// Buffer budget (ReqSyncNode::max_buffered_rows/_bytes): pending
/// tuples — including proliferation copies — are bounded. The default
/// response to a full buffer is backpressure: stop pulling from the
/// child and process completions until there is room, so the calls
/// already in flight drain the buffer. With shed_oldest the oldest
/// pending tuple is dropped instead (ExecContext::shed_tuples); its
/// calls are still reaped at Close.
///
/// Memory governance: every buffered tuple's bytes are also charged to
/// the query MemoryBudget (ExecContext::memory) through a
/// MemoryReservation — ForceAdd, since the tuple already exists;
/// admission control is the backpressure above, which additionally
/// engages when the budget itself is exhausted while tuples are
/// buffered. Every erase path (completion, degradation, shedding,
/// Close) releases the matching charge so the ledger balances to zero.
///
/// Thread model: operators are driven by a single executor thread, so
/// this class has no lock and no WSQ_GUARDED_BY state of its own; all
/// cross-thread coordination happens inside the ReqPump it polls.
class ReqSyncOperator : public Operator {
 public:
  ReqSyncOperator(const ReqSyncNode* node, OperatorPtr child,
                  ReqPump* pump, ExecContext* ctx = nullptr)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)),
        pump_(pump),
        ctx_(ctx) {
    AddChild(child_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;

  /// Reaps any still-outstanding call results (relevant on error/early
  /// termination paths) so they do not accumulate in the shared
  /// ReqPumpHash, then closes the child.
  Status CloseImpl() override;

  /// Peak number of tuples buffered while waiting (observability).
  size_t peak_buffered() const { return peak_buffered_; }
  /// Peak approximate bytes across buffered pending tuples.
  size_t peak_buffered_bytes() const { return peak_buffered_bytes_; }

  /// Tuples cancelled by this operator under OnCallError::kDropTuple.
  uint64_t dropped_tuples() const { return dropped_tuples_; }
  /// Tuples NULL-completed by this operator under OnCallError::kNullPad.
  uint64_t null_padded_tuples() const { return null_padded_tuples_; }
  /// Pending tuples dropped by the shed-oldest buffer budget.
  uint64_t shed_tuples() const { return shed_tuples_; }

 private:
  struct Entry {
    Row row;
    std::set<CallId> pending;
    /// ApproxBytes of `row` at insertion, so erasure balances exactly.
    size_t bytes = 0;
  };

  /// Applies one completed call to every tuple waiting on it.
  Status ProcessCompletion(CallId call, const CallResult& result);

  /// Applies the node's OnCallError policy to a failed call. Returns
  /// the call's error under kFailQuery; otherwise degrades the waiting
  /// tuples and returns OK.
  Status DegradeFailedCall(CallId call, const Status& error);

  /// Classifies one child row into the ready queue or the wait index.
  void Absorb(Row row);

  /// Non-blocking: drains every already-completed call we wait on.
  /// Returns true if any tuple changed state.
  Result<bool> PollCompletions();

  /// WaitForCompletionBeyond wrapper that, under profiling/tracing,
  /// accumulates OpProfile::blocked_on_sync_micros and emits a
  /// "reqsync.wait" span. This blocked time is the paper's async win in
  /// one number: waits overlap all in-flight calls, so it approaches
  /// the MAX of their latencies instead of the sum.
  void BlockedWait(uint64_t seq);

  /// Replaces placeholders of `call` in `row` with `values` fields.
  static Result<Row> PatchRow(const Row& row, CallId call,
                              const Row& values);

  void AddEntry(Row row, std::set<CallId> pending);

  /// True when a row/byte budget is configured on the node.
  bool HasBudget() const {
    return node_->max_buffered_rows > 0 || node_->max_buffered_bytes > 0;
  }
  /// True while the buffer can absorb one more pending tuple.
  bool HasRoom() const;
  /// Backpressure: blocks (processing completions) until HasRoom().
  /// No-op in shed-oldest mode or without a budget.
  Status WaitForRoom();
  /// Shed-oldest: drops oldest pending tuples until back under budget.
  void ShedToBudget();

  const ReqSyncNode* node_;
  OperatorPtr child_;
  ReqPump* pump_;
  ExecContext* ctx_ = nullptr;
  /// Tracks buffered-tuple bytes against the query budget; mirrors
  /// buffered_bytes_ exactly (one charge per Entry::bytes).
  MemoryReservation mem_;
  bool child_drained_ = false;

  uint64_t next_entry_id_ = 1;
  /// Ordered by entry id (= insertion order) so shed-oldest is O(1).
  std::map<uint64_t, Entry> entries_;
  std::unordered_map<CallId, std::vector<uint64_t>> waiters_;
  std::deque<Row> ready_;
  /// Sum of Entry::bytes across entries_.
  size_t buffered_bytes_ = 0;
  size_t peak_buffered_ = 0;
  size_t peak_buffered_bytes_ = 0;
  uint64_t dropped_tuples_ = 0;
  uint64_t null_padded_tuples_ = 0;
  uint64_t shed_tuples_ = 0;
};

}  // namespace wsq

#endif  // WSQ_EXEC_REQ_SYNC_OP_H_
