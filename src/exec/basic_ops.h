#ifndef WSQ_EXEC_BASIC_OPS_H_
#define WSQ_EXEC_BASIC_OPS_H_

#include <unordered_set>
#include <vector>

#include "common/memory.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Selection σ: emits child rows satisfying the predicate.
class FilterOperator : public Operator {
 public:
  FilterOperator(const FilterNode* node, OperatorPtr child)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)) {
    AddChild(child_.get());
  }

  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  const FilterNode* node_;
  OperatorPtr child_;
};

/// Projection π: evaluates one expression per output column.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(const ProjectNode* node, OperatorPtr child)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)) {
    AddChild(child_.get());
  }

  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  const ProjectNode* node_;
  OperatorPtr child_;
};

/// LIMIT n: stops after n rows.
class LimitOperator : public Operator {
 public:
  LimitOperator(const LimitNode* node, OperatorPtr child)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)) {
    AddChild(child_.get());
  }

  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  const LimitNode* node_;
  OperatorPtr child_;
  int64_t emitted_ = 0;
};

/// Duplicate elimination via row hashing. The seen-set is charged to
/// the query memory budget (TryAdd with ForceAdd fallback: there is no
/// spill path for hash dedup, so growth past an exhausted budget is
/// admitted as a tracked overage and surfaced in the stats rather than
/// failing the query).
class DistinctOperator : public Operator {
 public:
  DistinctOperator(const DistinctNode* node, OperatorPtr child,
                   ExecContext* ctx = nullptr)
      : Operator(&node->schema()),
        child_(std::move(child)),
        ctx_(ctx) {
    AddChild(child_.get());
  }

  Status OpenImpl() override {
    seen_.clear();
    mem_.ReleaseAll();
    if (ctx_ != nullptr) mem_.Bind(ctx_->memory);
    return child_->Open();
  }
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override {
    seen_.clear();
    RecordPeakBytes(mem_.peak_bytes());
    mem_.ReleaseAll();
    return child_->Close();
  }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return r.Hash(); }
  };

  OperatorPtr child_;
  ExecContext* ctx_ = nullptr;
  MemoryReservation mem_;
  std::unordered_set<Row, RowHash> seen_;
};

}  // namespace wsq

#endif  // WSQ_EXEC_BASIC_OPS_H_
