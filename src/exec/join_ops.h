#ifndef WSQ_EXEC_JOIN_OPS_H_
#define WSQ_EXEC_JOIN_OPS_H_

#include <vector>

#include "common/memory.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Nested-loop join with the right side materialized at Open (the only
/// join technique in Redbase, paper §5). The materialized build side
/// is charged to the query memory budget (TryAdd with ForceAdd
/// fallback — no spill path, so overages are tracked, not fatal).
class NestedLoopJoinOperator : public Operator {
 public:
  NestedLoopJoinOperator(const NestedLoopJoinNode* node, OperatorPtr left,
                         OperatorPtr right, ExecContext* ctx = nullptr)
      : Operator(&node->schema()),
        node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {
    AddChild(left_.get());
    AddChild(right_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  const NestedLoopJoinNode* node_;  // null for cross product
  OperatorPtr left_;
  OperatorPtr right_;
  ExecContext* ctx_ = nullptr;
  MemoryReservation mem_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_pos_ = 0;

 protected:
  NestedLoopJoinOperator(const Schema* schema, OperatorPtr left,
                         OperatorPtr right, ExecContext* ctx)
      : Operator(schema),
        node_(nullptr),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {
    AddChild(left_.get());
    AddChild(right_.get());
  }
};

/// Cross product: a nested-loop join without a predicate.
class CrossProductOperator : public NestedLoopJoinOperator {
 public:
  CrossProductOperator(const CrossProductNode* node, OperatorPtr left,
                       OperatorPtr right, ExecContext* ctx = nullptr)
      : NestedLoopJoinOperator(&node->schema(), std::move(left),
                               std::move(right), ctx) {}
};

/// Dependent join (paper §4): for every left tuple, binds the right
/// virtual scan's term columns and re-opens it. The right child is
/// always a (A)EVScan by plan construction.
class DependentJoinOperator : public Operator {
 public:
  DependentJoinOperator(const DependentJoinNode* node, OperatorPtr left,
                        std::unique_ptr<VScanOperator> right)
      : Operator(&node->schema()),
        node_(node),
        left_(std::move(left)),
        right_(std::move(right)) {
    AddChild(left_.get());
    AddChild(right_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  const DependentJoinNode* node_;
  OperatorPtr left_;
  std::unique_ptr<VScanOperator> right_;
  Row left_row_;
  bool have_left_ = false;
  bool right_open_ = false;
};

}  // namespace wsq

#endif  // WSQ_EXEC_JOIN_OPS_H_
