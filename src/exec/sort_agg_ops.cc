#include "exec/sort_agg_ops.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "storage/serde.h"

namespace wsq {

namespace {

/// Approximate footprint of one buffered (keys, row) pair / group
/// entry. The container-node constant keeps the ledger honest about
/// bookkeeping overhead without per-allocator precision.
constexpr size_t kEntryOverhead = 64;

size_t KeysApproxBytes(const std::vector<Value>& keys) {
  size_t bytes = sizeof(std::vector<Value>);
  for (const Value& k : keys) bytes += k.ApproxBytes();
  return bytes;
}

/// One spill record: [u32 key_len][key blob][payload blob]. The key
/// blob is decoded for merge ordering without re-evaluating any
/// expression; the payload is the data row (Sort) or the flattened
/// accumulators (Aggregate).
std::string EncodeSpillRecord(const Row& key_row, const Row& payload) {
  std::string key_blob = SerializeSpillRow(key_row);
  std::string record;
  uint32_t klen = static_cast<uint32_t>(key_blob.size());
  char len[4];
  std::memcpy(len, &klen, 4);
  record.append(len, 4);
  record += key_blob;
  record += SerializeSpillRow(payload);
  return record;
}

Status DecodeSpillRecord(const std::string& record, Row* key_row,
                         Row* payload) {
  if (record.size() < 4) {
    return Status::DataLoss("spill record truncated: missing key length");
  }
  uint32_t klen;
  std::memcpy(&klen, record.data(), 4);
  if (record.size() - 4 < klen) {
    return Status::DataLoss("spill record truncated: key past end");
  }
  std::string_view rest(record);
  rest.remove_prefix(4);
  WSQ_ASSIGN_OR_RETURN(*key_row, DeserializeSpillRow(rest.substr(0, klen)));
  WSQ_ASSIGN_OR_RETURN(*payload, DeserializeSpillRow(rest.substr(klen)));
  return Status::OK();
}

}  // namespace

// --- SortOperator ---

bool SortOperator::KeyLess(const std::vector<Value>& a,
                           const std::vector<Value>& b) const {
  const auto& key_specs = node_->keys();
  for (size_t i = 0; i < key_specs.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c == 0) continue;
    return key_specs[i].descending ? c > 0 : c < 0;
  }
  return false;
}

void SortOperator::SortBatch(std::vector<Keyed>* batch) const {
  std::stable_sort(batch->begin(), batch->end(),
                   [this](const Keyed& a, const Keyed& b) {
                     return KeyLess(a.first, b.first);
                   });
}

Status SortOperator::SpillBatch(std::vector<Keyed>* batch) {
  if (batch->empty()) return Status::OK();
  if (ctx_ == nullptr || ctx_->spill == nullptr) {
    return Status::ResourceExhausted(
        "sort: memory budget exhausted and spilling is unavailable");
  }
  SortBatch(batch);
  if (spill_file_ == nullptr) {
    WSQ_ASSIGN_OR_RETURN(spill_file_, ctx_->spill->Create());
  }
  SpillWriter writer(spill_file_.get());
  for (const Keyed& entry : *batch) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_RETURN_IF_ERROR(
        writer.Append(EncodeSpillRecord(Row(entry.first), entry.second)));
  }
  WSQ_ASSIGN_OR_RETURN(SpillRun run, writer.Finish());
  runs_.push_back(run);
  // Free the batch's capacity, not just its size: the point of the
  // spill is to give the bytes back.
  std::vector<Keyed>().swap(*batch);
  mem_.ReleaseAll();
  CountSpill(run.bytes, 1);
  if (ctx_ != nullptr) {
    ctx_->spilled_bytes.fetch_add(run.bytes, std::memory_order_relaxed);
    ctx_->spill_runs.fetch_add(1, std::memory_order_relaxed);
  }
  if (tracer() != nullptr) {
    tracer()->Event("op", "spill",
                    StrFormat("%s run=%zu records=%llu bytes=%llu",
                              label().c_str(), runs_.size() - 1,
                              (unsigned long long)run.records,
                              (unsigned long long)run.bytes));
  }
  return Status::OK();
}

Status SortOperator::AdvanceSource(size_t i) {
  MergeSource& src = merge_[i];
  std::string record;
  WSQ_ASSIGN_OR_RETURN(bool more, src.reader->Next(&record));
  if (!more) {
    src.done = true;
    src.keys.clear();
    src.row = Row();
    return Status::OK();
  }
  Row key_row;
  WSQ_RETURN_IF_ERROR(DecodeSpillRecord(record, &key_row, &src.row));
  src.keys = key_row.values();
  return Status::OK();
}

Status SortOperator::OpenImpl() {
  rows_.clear();
  runs_.clear();
  merge_.clear();
  spill_file_.reset();
  next_ = 0;
  mem_.ReleaseAll();
  if (ctx_ != nullptr) mem_.Bind(ctx_->memory);
  WSQ_RETURN_IF_ERROR(child_->Open());
  child_open_ = true;

  // Materialize rows with their precomputed sort keys, charging every
  // buffered pair to the query's memory budget.
  std::vector<Keyed> keyed;
  Row row;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    std::vector<Value> keys;
    keys.reserve(node_->keys().size());
    for (const SortNode::SortKey& k : node_->keys()) {
      WSQ_ASSIGN_OR_RETURN(Value v, k.expr->Eval(row));
      if (v.is_placeholder()) {
        return Status::ExecutionError(
            "sort key is an incomplete (placeholder) value");
      }
      keys.push_back(std::move(v));
    }
    size_t delta =
        KeysApproxBytes(keys) + row.ApproxBytes() + kEntryOverhead;
    if (!mem_.TryAdd(delta)) {
      // Tier 1: degrade to external sort instead of dying.
      WSQ_RETURN_IF_ERROR(SpillBatch(&keyed));
      if (!mem_.TryAdd(delta)) {
        // A single row larger than the whole budget: admit it as a
        // tracked overage rather than deadlocking on an empty batch.
        mem_.ForceAdd(delta);
      }
    }
    keyed.emplace_back(std::move(keys), std::move(row));
  }
  child_open_ = false;
  WSQ_RETURN_IF_ERROR(child_->Close());

  if (runs_.empty()) {
    // Everything fit: the classic in-memory stable sort.
    SortBatch(&keyed);
    rows_.reserve(keyed.size());
    for (auto& [keys, r] : keyed) rows_.push_back(std::move(r));
    RecordPeakBytes(mem_.peak_bytes());
    return Status::OK();
  }

  // Spilled: flush the tail batch and open one merge source per run.
  WSQ_RETURN_IF_ERROR(SpillBatch(&keyed));
  merge_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    merge_[i].reader =
        std::make_unique<SpillReader>(spill_file_.get(), runs_[i]);
    WSQ_RETURN_IF_ERROR(AdvanceSource(i));
  }
  if (tracer() != nullptr) {
    tracer()->Event("op", "merge",
                    StrFormat("%s runs=%zu", label().c_str(),
                              runs_.size()));
  }
  RecordPeakBytes(mem_.peak_bytes());
  return Status::OK();
}

Result<bool> SortOperator::NextImpl(Row* row) {
  if (merge_.empty()) {
    if (next_ >= rows_.size()) return false;
    *row = rows_[next_++];
    return true;
  }
  WSQ_RETURN_IF_ERROR(CheckAlive());
  // K-way merge, smallest key first; ties go to the lowest run index
  // (runs partition the input in order, so this preserves the stable
  // sort's tie order exactly).
  size_t best = merge_.size();
  for (size_t i = 0; i < merge_.size(); ++i) {
    if (merge_[i].done) continue;
    if (best == merge_.size() || KeyLess(merge_[i].keys, merge_[best].keys)) {
      best = i;
    }
  }
  if (best == merge_.size()) return false;
  *row = std::move(merge_[best].row);
  WSQ_RETURN_IF_ERROR(AdvanceSource(best));
  return true;
}

Status SortOperator::CloseImpl() {
  rows_.clear();
  merge_.clear();
  runs_.clear();
  spill_file_.reset();
  mem_.ReleaseAll();
  if (child_open_) {
    child_open_ = false;
    return child_->Close();
  }
  return Status::OK();
}

// --- AggregateOperator ---

Status AggregateOperator::Accumulate(const Row& input,
                                     std::vector<Accumulator>* accs) {
  const auto& specs = node_->aggs();
  for (size_t i = 0; i < specs.size(); ++i) {
    Accumulator& acc = (*accs)[i];
    if (specs[i].func == AggFunc::kCountStar) {
      ++acc.count;
      continue;
    }
    WSQ_ASSIGN_OR_RETURN(Value v, specs[i].arg->Eval(input));
    if (v.is_null()) continue;  // aggregates skip NULLs
    if (v.is_placeholder()) {
      return Status::ExecutionError(
          "aggregate over an incomplete (placeholder) value");
    }
    ++acc.count;
    switch (specs[i].func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (!v.is_numeric()) {
          return Status::TypeError("SUM/AVG require numeric input");
        }
        if (v.is_double() || acc.sum_is_double) {
          if (!acc.sum_is_double) {
            acc.sum_double = static_cast<double>(acc.sum_int);
            acc.sum_is_double = true;
          }
          acc.sum_double += v.NumericAsDouble();
        } else {
          acc.sum_int += v.AsInt();
        }
        break;
      case AggFunc::kMin:
        if (!acc.has_value || v.Compare(acc.min) < 0) acc.min = v;
        break;
      case AggFunc::kMax:
        if (!acc.has_value || v.Compare(acc.max) > 0) acc.max = v;
        break;
      case AggFunc::kCountStar:
        break;
    }
    acc.has_value = true;
  }
  return Status::OK();
}

Result<Value> AggregateOperator::Finalize(
    const AggregateNode::AggSpec& spec, const Accumulator& acc) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.sum_is_double ? Value::Real(acc.sum_double)
                               : Value::Int(acc.sum_int);
    case AggFunc::kAvg: {
      if (acc.count == 0) return Value::Null();
      double total = acc.sum_is_double
                         ? acc.sum_double
                         : static_cast<double>(acc.sum_int);
      return Value::Real(total / static_cast<double>(acc.count));
    }
    case AggFunc::kMin:
      return acc.has_value ? acc.min : Value::Null();
    case AggFunc::kMax:
      return acc.has_value ? acc.max : Value::Null();
  }
  return Status::Internal("unknown aggregate function");
}

// Spill payload layout: 7 values per aggregate — count, sum_int,
// sum_double, sum_is_double, has_value, min, max. min/max ride as
// plain Values (Null when the accumulator never saw one).
Status AggregateOperator::SpillGroups(GroupMap* groups) {
  if (groups->empty()) return Status::OK();
  if (ctx_ == nullptr || ctx_->spill == nullptr) {
    return Status::ResourceExhausted(
        "aggregate: memory budget exhausted and spilling is unavailable");
  }
  if (spill_file_ == nullptr) {
    WSQ_ASSIGN_OR_RETURN(spill_file_, ctx_->spill->Create());
  }
  SpillWriter writer(spill_file_.get());
  for (const auto& [key, accs] : *groups) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    Row payload;
    for (const Accumulator& acc : accs) {
      payload.Append(Value::Int(acc.count));
      payload.Append(Value::Int(acc.sum_int));
      payload.Append(Value::Real(acc.sum_double));
      payload.Append(Value::Int(acc.sum_is_double ? 1 : 0));
      payload.Append(Value::Int(acc.has_value ? 1 : 0));
      payload.Append(acc.min);
      payload.Append(acc.max);
    }
    WSQ_RETURN_IF_ERROR(writer.Append(EncodeSpillRecord(key, payload)));
  }
  WSQ_ASSIGN_OR_RETURN(SpillRun run, writer.Finish());
  runs_.push_back(run);
  groups->clear();
  mem_.ReleaseAll();
  CountSpill(run.bytes, 1);
  if (ctx_ != nullptr) {
    ctx_->spilled_bytes.fetch_add(run.bytes, std::memory_order_relaxed);
    ctx_->spill_runs.fetch_add(1, std::memory_order_relaxed);
  }
  if (tracer() != nullptr) {
    tracer()->Event("op", "spill",
                    StrFormat("%s run=%zu records=%llu bytes=%llu",
                              label().c_str(), runs_.size() - 1,
                              (unsigned long long)run.records,
                              (unsigned long long)run.bytes));
  }
  return Status::OK();
}

void AggregateOperator::MergeAccumulator(const Accumulator& from,
                                         Accumulator* into) {
  into->count += from.count;
  if (into->sum_is_double || from.sum_is_double) {
    double total =
        (into->sum_is_double ? into->sum_double
                             : static_cast<double>(into->sum_int)) +
        (from.sum_is_double ? from.sum_double
                            : static_cast<double>(from.sum_int));
    into->sum_double = total;
    into->sum_is_double = true;
  } else {
    into->sum_int += from.sum_int;
  }
  if (from.has_value) {
    if (!into->has_value) {
      into->min = from.min;
      into->max = from.max;
    } else {
      if (from.min.Compare(into->min) < 0) into->min = from.min;
      if (from.max.Compare(into->max) > 0) into->max = from.max;
    }
    into->has_value = true;
  }
}

Status AggregateOperator::AdvanceSource(size_t i) {
  MergeSource& src = merge_[i];
  std::string record;
  WSQ_ASSIGN_OR_RETURN(bool more, src.reader->Next(&record));
  if (!more) {
    src.done = true;
    src.key = Row();
    src.accs.clear();
    return Status::OK();
  }
  Row payload;
  WSQ_RETURN_IF_ERROR(DecodeSpillRecord(record, &src.key, &payload));
  size_t naggs = node_->aggs().size();
  if (payload.size() != naggs * 7) {
    return Status::DataLoss("spill record has wrong accumulator arity");
  }
  src.accs.assign(naggs, Accumulator{});
  for (size_t a = 0; a < naggs; ++a) {
    size_t base = a * 7;
    Accumulator& acc = src.accs[a];
    acc.count = payload.value(base + 0).AsInt();
    acc.sum_int = payload.value(base + 1).AsInt();
    acc.sum_double = payload.value(base + 2).AsDouble();
    acc.sum_is_double = payload.value(base + 3).AsInt() != 0;
    acc.has_value = payload.value(base + 4).AsInt() != 0;
    acc.min = payload.value(base + 5);
    acc.max = payload.value(base + 6);
  }
  return Status::OK();
}

Result<Row> AggregateOperator::FinalizeGroup(
    const Row& key, const std::vector<Accumulator>& accs) const {
  Row out = key;
  for (size_t i = 0; i < node_->aggs().size(); ++i) {
    WSQ_ASSIGN_OR_RETURN(Value v, Finalize(node_->aggs()[i], accs[i]));
    out.Append(std::move(v));
  }
  return out;
}

Status AggregateOperator::OpenImpl() {
  results_.clear();
  runs_.clear();
  merge_.clear();
  spill_file_.reset();
  merging_ = false;
  next_ = 0;
  mem_.ReleaseAll();
  if (ctx_ != nullptr) mem_.Bind(ctx_->memory);
  WSQ_RETURN_IF_ERROR(child_->Open());
  child_open_ = true;

  // Group rows by key; std::map keeps deterministic group order.
  GroupMap groups(
      +[](const Row& a, const Row& b) { return a.Compare(b) < 0; });

  Row input;
  bool any_input = false;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
    if (!more) break;
    any_input = true;
    Row key;
    for (const BoundExprPtr& g : node_->group_by()) {
      WSQ_ASSIGN_OR_RETURN(Value v, g->Eval(input));
      key.Append(std::move(v));
    }
    size_t delta = key.ApproxBytes() +
                   node_->aggs().size() * sizeof(Accumulator) +
                   kEntryOverhead;
    auto it = groups.find(key);
    if (it == groups.end()) {
      if (!mem_.TryAdd(delta)) {
        // Tier 1: flush the sorted group map as a run and start fresh.
        WSQ_RETURN_IF_ERROR(SpillGroups(&groups));
        if (!mem_.TryAdd(delta)) mem_.ForceAdd(delta);
      }
      it = groups
               .try_emplace(std::move(key), node_->aggs().size(),
                            Accumulator{})
               .first;
    }
    WSQ_RETURN_IF_ERROR(Accumulate(input, &it->second));
  }
  child_open_ = false;
  WSQ_RETURN_IF_ERROR(child_->Close());

  // Global aggregate over empty input still yields one row.
  if (!any_input && node_->group_by().empty()) {
    groups.try_emplace(Row(), node_->aggs().size(), Accumulator{});
  }

  if (runs_.empty()) {
    for (const auto& [key, accs] : groups) {
      WSQ_ASSIGN_OR_RETURN(Row out, FinalizeGroup(key, accs));
      results_.push_back(std::move(out));
    }
    RecordPeakBytes(mem_.peak_bytes());
    return Status::OK();
  }

  // Spilled: flush the remaining groups and stream-merge the runs from
  // Next(). Runs are key-sorted (std::map order), so the merged group
  // order is identical to the in-memory path.
  WSQ_RETURN_IF_ERROR(SpillGroups(&groups));
  merging_ = true;
  merge_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    merge_[i].reader =
        std::make_unique<SpillReader>(spill_file_.get(), runs_[i]);
    WSQ_RETURN_IF_ERROR(AdvanceSource(i));
  }
  if (tracer() != nullptr) {
    tracer()->Event("op", "merge",
                    StrFormat("%s runs=%zu", label().c_str(),
                              runs_.size()));
  }
  RecordPeakBytes(mem_.peak_bytes());
  return Status::OK();
}

Result<bool> AggregateOperator::NextImpl(Row* row) {
  if (!merging_) {
    if (next_ >= results_.size()) return false;
    *row = results_[next_++];
    return true;
  }
  WSQ_RETURN_IF_ERROR(CheckAlive());
  // Smallest key across the sources; every source holding an equal key
  // folds its accumulators in and advances (a group may span runs).
  size_t best = merge_.size();
  for (size_t i = 0; i < merge_.size(); ++i) {
    if (merge_[i].done) continue;
    if (best == merge_.size() ||
        merge_[i].key.Compare(merge_[best].key) < 0) {
      best = i;
    }
  }
  if (best == merge_.size()) return false;
  Row key = std::move(merge_[best].key);
  std::vector<Accumulator> accs = std::move(merge_[best].accs);
  WSQ_RETURN_IF_ERROR(AdvanceSource(best));
  for (size_t i = 0; i < merge_.size(); ++i) {
    while (!merge_[i].done && merge_[i].key.Compare(key) == 0) {
      for (size_t a = 0; a < accs.size(); ++a) {
        MergeAccumulator(merge_[i].accs[a], &accs[a]);
      }
      WSQ_RETURN_IF_ERROR(AdvanceSource(i));
    }
  }
  WSQ_ASSIGN_OR_RETURN(*row, FinalizeGroup(key, accs));
  return true;
}

Status AggregateOperator::CloseImpl() {
  results_.clear();
  merge_.clear();
  runs_.clear();
  spill_file_.reset();
  merging_ = false;
  mem_.ReleaseAll();
  if (child_open_) {
    child_open_ = false;
    return child_->Close();
  }
  return Status::OK();
}

}  // namespace wsq
