#include "exec/sort_agg_ops.h"

#include <algorithm>

#include "common/macros.h"

namespace wsq {

Status SortOperator::OpenImpl() {
  rows_.clear();
  next_ = 0;
  WSQ_RETURN_IF_ERROR(child_->Open());
  child_open_ = true;

  // Materialize rows with their precomputed sort keys.
  std::vector<std::pair<std::vector<Value>, Row>> keyed;
  Row row;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    std::vector<Value> keys;
    keys.reserve(node_->keys().size());
    for (const SortNode::SortKey& k : node_->keys()) {
      WSQ_ASSIGN_OR_RETURN(Value v, k.expr->Eval(row));
      if (v.is_placeholder()) {
        return Status::ExecutionError(
            "sort key is an incomplete (placeholder) value");
      }
      keys.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(keys), std::move(row));
  }
  child_open_ = false;
  WSQ_RETURN_IF_ERROR(child_->Close());

  const auto& key_specs = node_->keys();
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&key_specs](const auto& a, const auto& b) {
                     for (size_t i = 0; i < key_specs.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c == 0) continue;
                       return key_specs[i].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });

  rows_.reserve(keyed.size());
  for (auto& [keys, r] : keyed) rows_.push_back(std::move(r));
  return Status::OK();
}

Result<bool> SortOperator::NextImpl(Row* row) {
  if (next_ >= rows_.size()) return false;
  *row = rows_[next_++];
  return true;
}

Status SortOperator::CloseImpl() {
  rows_.clear();
  if (child_open_) {
    child_open_ = false;
    return child_->Close();
  }
  return Status::OK();
}

Status AggregateOperator::Accumulate(const Row& input,
                                     std::vector<Accumulator>* accs) {
  const auto& specs = node_->aggs();
  for (size_t i = 0; i < specs.size(); ++i) {
    Accumulator& acc = (*accs)[i];
    if (specs[i].func == AggFunc::kCountStar) {
      ++acc.count;
      continue;
    }
    WSQ_ASSIGN_OR_RETURN(Value v, specs[i].arg->Eval(input));
    if (v.is_null()) continue;  // aggregates skip NULLs
    if (v.is_placeholder()) {
      return Status::ExecutionError(
          "aggregate over an incomplete (placeholder) value");
    }
    ++acc.count;
    switch (specs[i].func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (!v.is_numeric()) {
          return Status::TypeError("SUM/AVG require numeric input");
        }
        if (v.is_double() || acc.sum_is_double) {
          if (!acc.sum_is_double) {
            acc.sum_double = static_cast<double>(acc.sum_int);
            acc.sum_is_double = true;
          }
          acc.sum_double += v.NumericAsDouble();
        } else {
          acc.sum_int += v.AsInt();
        }
        break;
      case AggFunc::kMin:
        if (!acc.has_value || v.Compare(acc.min) < 0) acc.min = v;
        break;
      case AggFunc::kMax:
        if (!acc.has_value || v.Compare(acc.max) > 0) acc.max = v;
        break;
      case AggFunc::kCountStar:
        break;
    }
    acc.has_value = true;
  }
  return Status::OK();
}

Result<Value> AggregateOperator::Finalize(
    const AggregateNode::AggSpec& spec, const Accumulator& acc) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.sum_is_double ? Value::Real(acc.sum_double)
                               : Value::Int(acc.sum_int);
    case AggFunc::kAvg: {
      if (acc.count == 0) return Value::Null();
      double total = acc.sum_is_double
                         ? acc.sum_double
                         : static_cast<double>(acc.sum_int);
      return Value::Real(total / static_cast<double>(acc.count));
    }
    case AggFunc::kMin:
      return acc.has_value ? acc.min : Value::Null();
    case AggFunc::kMax:
      return acc.has_value ? acc.max : Value::Null();
  }
  return Status::Internal("unknown aggregate function");
}

Status AggregateOperator::OpenImpl() {
  results_.clear();
  next_ = 0;
  WSQ_RETURN_IF_ERROR(child_->Open());
  child_open_ = true;

  // Group rows by key; std::map keeps deterministic group order.
  std::map<Row, std::vector<Accumulator>,
           bool (*)(const Row&, const Row&)>
      groups(+[](const Row& a, const Row& b) { return a.Compare(b) < 0; });

  Row input;
  bool any_input = false;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
    if (!more) break;
    any_input = true;
    Row key;
    for (const BoundExprPtr& g : node_->group_by()) {
      WSQ_ASSIGN_OR_RETURN(Value v, g->Eval(input));
      key.Append(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(
        std::move(key), node_->aggs().size(), Accumulator{});
    WSQ_RETURN_IF_ERROR(Accumulate(input, &it->second));
  }
  child_open_ = false;
  WSQ_RETURN_IF_ERROR(child_->Close());

  // Global aggregate over empty input still yields one row.
  if (!any_input && node_->group_by().empty()) {
    groups.try_emplace(Row(), node_->aggs().size(), Accumulator{});
  }

  for (const auto& [key, accs] : groups) {
    Row out = key;
    for (size_t i = 0; i < node_->aggs().size(); ++i) {
      WSQ_ASSIGN_OR_RETURN(Value v, Finalize(node_->aggs()[i], accs[i]));
      out.Append(std::move(v));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> AggregateOperator::NextImpl(Row* row) {
  if (next_ >= results_.size()) return false;
  *row = results_[next_++];
  return true;
}

Status AggregateOperator::CloseImpl() {
  results_.clear();
  if (child_open_) {
    child_open_ = false;
    return child_->Close();
  }
  return Status::OK();
}

}  // namespace wsq
