#ifndef WSQ_EXEC_SORT_AGG_OPS_H_
#define WSQ_EXEC_SORT_AGG_OPS_H_

#include <map>
#include <vector>

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace wsq {

/// ORDER BY: materializes the child and stable-sorts on the key
/// expressions (precomputed per row).
class SortOperator : public Operator {
 public:
  SortOperator(const SortNode* node, OperatorPtr child)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)) {
    AddChild(child_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  const SortNode* node_;
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t next_ = 0;
  // True while the child is open. Open() closes the child after a full
  // drain; if the drain errors out, Close() must cascade instead so a
  // ReqSync below reaps its outstanding calls.
  bool child_open_ = false;
};

/// GROUP BY + aggregate evaluation; groups ordered deterministically
/// by key. NULL arguments are skipped (except COUNT(*)); a global
/// aggregate over empty input yields one row.
class AggregateOperator : public Operator {
 public:
  AggregateOperator(const AggregateNode* node, OperatorPtr child)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)) {
    AddChild(child_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  struct Accumulator {
    int64_t count = 0;       // rows seen (non-null arg for kCount)
    int64_t sum_int = 0;
    double sum_double = 0;
    bool sum_is_double = false;
    Value min;
    Value max;
    bool has_value = false;
  };

  Status Accumulate(const Row& input, std::vector<Accumulator>* accs);
  Result<Value> Finalize(const AggregateNode::AggSpec& spec,
                         const Accumulator& acc) const;

  const AggregateNode* node_;
  OperatorPtr child_;
  std::vector<Row> results_;
  size_t next_ = 0;
  bool child_open_ = false;  // see SortOperator::child_open_
};

}  // namespace wsq

#endif  // WSQ_EXEC_SORT_AGG_OPS_H_
