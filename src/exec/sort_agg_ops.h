#ifndef WSQ_EXEC_SORT_AGG_OPS_H_
#define WSQ_EXEC_SORT_AGG_OPS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/memory.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"
#include "storage/spill.h"

namespace wsq {

/// ORDER BY: materializes the child and stable-sorts on the key
/// expressions (precomputed per row).
///
/// Memory governance: every buffered (keys, row) pair is charged to the
/// query's MemoryBudget through a MemoryReservation. When a reservation
/// fails (tier 1 of the degradation ladder), the current batch is
/// stable-sorted and written as a sorted run to a spill temp file
/// (checksummed pages via the DiskManager layer); Next() then k-way
/// merges the runs. Run batches partition the input in order and ties
/// prefer the lower run index, so spilled output is byte-identical to
/// the in-memory stable sort. Without a SpillManager in the
/// ExecContext, a failed reservation fails the query with
/// kResourceExhausted instead.
class SortOperator : public Operator {
 public:
  SortOperator(const SortNode* node, OperatorPtr child,
               ExecContext* ctx = nullptr)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)),
        ctx_(ctx) {
    AddChild(child_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

  /// Runs written to the spill file (0 = the sort fit in memory).
  size_t spill_runs() const { return runs_.size(); }

 private:
  using Keyed = std::pair<std::vector<Value>, Row>;

  /// Stable-sorts `batch` with the node's key ordering.
  void SortBatch(std::vector<Keyed>* batch) const;
  /// True iff `a` orders strictly before `b` under the sort keys.
  bool KeyLess(const std::vector<Value>& a,
               const std::vector<Value>& b) const;
  /// Sorts the batch, writes it as one spill run, and releases its
  /// reservation. No-op on an empty batch.
  Status SpillBatch(std::vector<Keyed>* batch);
  /// Advances a merge source to its next record; marks it done at end
  /// of run.
  Status AdvanceSource(size_t i);

  const SortNode* node_;
  OperatorPtr child_;
  ExecContext* ctx_ = nullptr;
  MemoryReservation mem_;
  std::vector<Row> rows_;
  size_t next_ = 0;
  // True while the child is open. Open() closes the child after a full
  // drain; if the drain errors out, Close() must cascade instead so a
  // ReqSync below reaps its outstanding calls.
  bool child_open_ = false;

  struct MergeSource {
    std::unique_ptr<SpillReader> reader;
    std::vector<Value> keys;
    Row row;
    bool done = false;
  };
  std::unique_ptr<SpillFile> spill_file_;
  std::vector<SpillRun> runs_;
  std::vector<MergeSource> merge_;
};

/// GROUP BY + aggregate evaluation; groups ordered deterministically
/// by key. NULL arguments are skipped (except COUNT(*)); a global
/// aggregate over empty input yields one row.
///
/// Memory governance: each group (key + accumulators) is charged to
/// the query budget at insertion. On a failed reservation the group
/// map — already key-sorted — is serialized as a sorted run of
/// (key, accumulators) records and cleared; at the end of the drain
/// Next() streams a k-way merge of the runs, combining accumulators of
/// equal keys, so group order (and, for integer aggregates, every
/// byte) matches the in-memory path. Floating-point SUM/AVG may
/// differ by reassociation when spilled.
class AggregateOperator : public Operator {
 public:
  AggregateOperator(const AggregateNode* node, OperatorPtr child,
                    ExecContext* ctx = nullptr)
      : Operator(&node->schema()),
        node_(node),
        child_(std::move(child)),
        ctx_(ctx) {
    AddChild(child_.get());
  }

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

  /// Runs written to the spill file (0 = the build fit in memory).
  size_t spill_runs() const { return runs_.size(); }

 private:
  struct Accumulator {
    int64_t count = 0;       // rows seen (non-null arg for kCount)
    int64_t sum_int = 0;
    double sum_double = 0;
    bool sum_is_double = false;
    Value min;
    Value max;
    bool has_value = false;
  };

  using GroupMap = std::map<Row, std::vector<Accumulator>,
                            bool (*)(const Row&, const Row&)>;

  Status Accumulate(const Row& input, std::vector<Accumulator>* accs);
  Result<Value> Finalize(const AggregateNode::AggSpec& spec,
                         const Accumulator& acc) const;

  /// Serializes the (sorted) group map as one spill run, clears it,
  /// and releases its reservation. No-op on an empty map.
  Status SpillGroups(GroupMap* groups);
  /// Folds `from` into `into` (counts add, sums add with double
  /// widening, min/max recompare, has_value ORs).
  static void MergeAccumulator(const Accumulator& from, Accumulator* into);
  Status AdvanceSource(size_t i);
  /// Builds the output row for one merged group.
  Result<Row> FinalizeGroup(const Row& key,
                            const std::vector<Accumulator>& accs) const;

  const AggregateNode* node_;
  OperatorPtr child_;
  ExecContext* ctx_ = nullptr;
  MemoryReservation mem_;
  std::vector<Row> results_;
  size_t next_ = 0;
  bool child_open_ = false;  // see SortOperator::child_open_

  struct MergeSource {
    std::unique_ptr<SpillReader> reader;
    Row key;
    std::vector<Accumulator> accs;
    bool done = false;
  };
  std::unique_ptr<SpillFile> spill_file_;
  std::vector<SpillRun> runs_;
  std::vector<MergeSource> merge_;
  bool merging_ = false;
};

}  // namespace wsq

#endif  // WSQ_EXEC_SORT_AGG_OPS_H_
