#include "exec/operator.h"

#include <algorithm>

namespace wsq {

Status Operator::OpenInstrumented() {
  int64_t start = NowMicros();
  Status status;
  if (tracer_ != nullptr) {
    Tracer::Scope span(tracer_, "op", label_.empty() ? "open" : label_);
    span.AppendDetail("open");
    status = OpenImpl();
    if (!status.ok()) span.AppendDetail(StatusCodeToString(status.code()));
  } else {
    status = OpenImpl();
  }
  if (profile_on_) {
    profile_.opens++;
    profile_.open_micros += NowMicros() - start;
  }
  return status;
}

Status Operator::CloseInstrumented() {
  int64_t start = NowMicros();
  Status status;
  if (tracer_ != nullptr) {
    Tracer::Scope span(tracer_, "op", label_.empty() ? "close" : label_);
    span.AppendDetail("close");
    status = CloseImpl();
  } else {
    status = CloseImpl();
  }
  if (profile_on_) {
    profile_.close_micros += NowMicros() - start;
  }
  return status;
}

PlanProfileNode Operator::BuildProfileTree() const {
  PlanProfileNode node;
  node.label = label_.empty() ? "Operator" : label_;
  node.profile = profile_;
  int64_t children_total = 0;
  for (const Operator* child : children_) {
    node.children.push_back(child->BuildProfileTree());
    children_total += child->profile().total_micros();
  }
  node.self_micros =
      std::max<int64_t>(0, profile_.total_micros() - children_total);
  return node;
}

}  // namespace wsq
