#include "exec/scan_ops.h"

#include "common/macros.h"
#include "common/strings.h"
#include "storage/serde.h"

namespace wsq {

Status SeqScanOperator::OpenImpl() {
  // std::optional::emplace — constructs one scanner, grows nothing.
  // wsqlint: allow(unbounded-op-growth)
  scanner_.emplace(node_->table());
  return Status::OK();
}

Result<bool> SeqScanOperator::NextImpl(Row* row) {
  WSQ_RETURN_IF_ERROR(CheckAlive());
  return scanner_->Next(row);
}

Status SeqScanOperator::CloseImpl() {
  scanner_.reset();
  return Status::OK();
}

Status IndexScanOperator::OpenImpl() {
  next_ = 0;
  const BPlusTree* tree = node_->index()->tree();
  if (node_->IsEquality()) {
    WSQ_ASSIGN_OR_RETURN(rids_, tree->SearchEqual(*node_->lo().value));
  } else {
    const Value* lo = node_->lo().value.has_value()
                          ? &*node_->lo().value
                          : nullptr;
    const Value* hi = node_->hi().value.has_value()
                          ? &*node_->hi().value
                          : nullptr;
    WSQ_ASSIGN_OR_RETURN(
        rids_, tree->SearchRange(lo, node_->lo().inclusive, hi,
                                 node_->hi().inclusive));
  }
  return Status::OK();
}

Result<bool> IndexScanOperator::NextImpl(Row* row) {
  if (next_ >= rids_.size()) return false;
  WSQ_ASSIGN_OR_RETURN(std::string bytes,
                       node_->table()->heap()->Get(rids_[next_++]));
  WSQ_ASSIGN_OR_RETURN(*row, DeserializeRow(bytes));
  return true;
}

Status IndexScanOperator::CloseImpl() {
  rids_.clear();
  return Status::OK();
}

namespace {

Result<std::string> TermToString(const Value& v) {
  switch (v.type()) {
    case TypeId::kString:
      return v.AsString();
    case TypeId::kInt64:
      return std::to_string(v.AsInt());
    case TypeId::kDouble:
      return StrFormat("%g", v.AsDouble());
    case TypeId::kNull:
      return Status::ExecutionError(
          "NULL cannot be used as a virtual table search term");
    case TypeId::kPlaceholder:
      return Status::ExecutionError(
          "incomplete (placeholder) value used as a search term — "
          "dependent join on a pending external result");
  }
  return Status::Internal("unknown value type");
}

}  // namespace

Result<VTableRequest> VScanBase::BuildRequest() const {
  VTableRequest request;
  request.search_exp = node_->search_exp;
  request.rank_limit = node_->rank_limit;
  request.shard = shard_;
  request.terms.resize(node_->num_terms());

  std::vector<bool> filled(node_->num_terms(), false);
  for (const auto& [term, value] : node_->constant_terms) {
    WSQ_ASSIGN_OR_RETURN(request.terms[term - 1], TermToString(value));
    filled[term - 1] = true;
  }
  for (const auto& [term, value] : bound_terms_) {
    if (term == 0 || term > node_->num_terms()) {
      return Status::Internal(
          StrFormat("binding for T%zu out of range", term));
    }
    WSQ_ASSIGN_OR_RETURN(request.terms[term - 1], TermToString(value));
    filled[term - 1] = true;
  }
  for (size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      return Status::ExecutionError(
          StrFormat("T%zu of %s is unbound at scan time", i + 1,
                    node_->effective_name().c_str()));
    }
  }
  return request;
}

Result<std::vector<Value>> VScanBase::InputValues(
    const VTableRequest& request) const {
  std::vector<Value> inputs;
  inputs.reserve(1 + request.terms.size());
  inputs.push_back(
      Value::Str(node_->table()->EffectiveSearchExp(request)));
  for (const std::string& t : request.terms) {
    inputs.push_back(Value::Str(t));
  }
  return inputs;
}

Status EVScanOperator::OpenImpl() {
  rows_.clear();
  next_ = 0;
  // The synchronous Fetch below blocks uninterruptibly; refuse to start
  // it for a query that is already cancelled or past its deadline.
  WSQ_RETURN_IF_ERROR(CheckAlive());
  WSQ_ASSIGN_OR_RETURN(VTableRequest request, BuildRequest());
  if (call_counter_ != nullptr) {
    call_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  CountCallIssued();
  if (tracer() != nullptr) {
    // The blocking fetch is the whole cost of a synchronous EVScan; one
    // span per call makes sum-of-latencies visible in the trace.
    Tracer::Scope span(tracer(), "net", "fetch");
    span.AppendDetail(node_->effective_name());
    WSQ_ASSIGN_OR_RETURN(rows_, node_->table()->Fetch(request));
  } else {
    WSQ_ASSIGN_OR_RETURN(rows_, node_->table()->Fetch(request));
  }
  return Status::OK();
}

Result<bool> EVScanOperator::NextImpl(Row* row) {
  if (next_ >= rows_.size()) return false;
  *row = rows_[next_++];
  return true;
}

Status EVScanOperator::CloseImpl() {
  rows_.clear();
  return Status::OK();
}

Status AEVScanOperator::OpenImpl() {
  emitted_ = false;
  WSQ_RETURN_IF_ERROR(CheckAlive());
  WSQ_ASSIGN_OR_RETURN(VTableRequest request, BuildRequest());
  WSQ_ASSIGN_OR_RETURN(inputs_, InputValues(request));
  // Deadline propagation: never issue a call that is allowed to run
  // longer than the query has left. A dependent join re-Opens this scan
  // per left row, so each call is clamped to the budget remaining at
  // its own Register time.
  int64_t budget = 0;
  if (cancel_token() != nullptr && cancel_token()->HasDeadline()) {
    budget = cancel_token()->RemainingMicros();
    if (budget <= 0) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    int64_t pump_default = pump_->limits().default_timeout_micros;
    if (pump_default > 0 && pump_default < budget) budget = pump_default;
  }
  call_ = node_->table()->SubmitAsync(request, pump_, budget);
  CountCallIssued();
  if (tracer() != nullptr) {
    tracer()->Event("reqpump", "register",
                    StrFormat("call=%llu %s", (unsigned long long)call_,
                              node_->effective_name().c_str()));
  }
  return Status::OK();
}

Result<bool> AEVScanOperator::NextImpl(Row* row) {
  if (emitted_) return false;
  emitted_ = true;
  Row out;
  for (const Value& v : inputs_) out.Append(v);
  size_t outputs = node_->table()->NumOutputColumns();
  for (size_t field = 0; field < outputs; ++field) {
    out.Append(Value::Pending(call_, static_cast<int32_t>(field)));
  }
  *row = std::move(out);
  return true;
}

Status AEVScanOperator::CloseImpl() {
  if (call_ != kInvalidCallId && !emitted_) {
    // Defensive reap: the call was registered at Open but its
    // placeholder row was never emitted (query aborted, or the
    // executor stopped early under LIMIT before pulling this scan), so
    // no ReqSync upstream will ever consume it — without this it would
    // sit in the shared pump hash forever. Once emitted, the row's
    // consumer owns the call; a dependent join re-Closing this scan
    // per outer row must not steal it.
    (void)pump_->CancelCall(call_);
    WSQ_IGNORE_STATUS(pump_->TakeBlocking(call_).status);
  }
  call_ = kInvalidCallId;
  return Status::OK();
}

}  // namespace wsq
