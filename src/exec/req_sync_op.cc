#include "exec/req_sync_op.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

namespace {
void UpdateMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}
}  // namespace

void ReqSyncOperator::BlockedWait(uint64_t seq) {
  if (!profiling() && tracer() == nullptr) {
    pump_->WaitForCompletionBeyond(seq, cancel_token());
    return;
  }
  int64_t start = NowMicros();
  if (tracer() != nullptr) {
    Tracer::Scope span(tracer(), "reqsync", "wait");
    pump_->WaitForCompletionBeyond(seq, cancel_token());
  } else {
    pump_->WaitForCompletionBeyond(seq, cancel_token());
  }
  AddBlockedMicros(NowMicros() - start);
}

void ReqSyncOperator::AddEntry(Row row, std::set<CallId> pending) {
  uint64_t id = next_entry_id_++;
  for (CallId c : pending) {
    waiters_[c].push_back(id);
  }
  size_t bytes = row.ApproxBytes();
  buffered_bytes_ += bytes;
  // ForceAdd, not TryAdd: the tuple already exists and must be indexed
  // for its calls' completions. Admission control is WaitForRoom (which
  // watches the budget) and, in shed-oldest mode, ShedToBudget.
  mem_.ForceAdd(bytes);
  entries_.emplace(id, Entry{std::move(row), std::move(pending), bytes});
  if (tracer() != nullptr) {
    tracer()->Event("reqsync", "buffer",
                    StrFormat("pending=%zu buffered_rows=%zu",
                              entries_.at(id).pending.size(),
                              entries_.size()));
  }
  // Proliferation copies land here too, so shed-oldest keeps its bound
  // even when one completion fans a tuple out into many.
  if (node_->shed_oldest) ShedToBudget();
  peak_buffered_ = std::max(peak_buffered_, entries_.size());
  peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes_);
  if (ctx_ != nullptr) {
    UpdateMax(&ctx_->reqsync_peak_rows, entries_.size());
    UpdateMax(&ctx_->reqsync_peak_bytes, buffered_bytes_);
  }
}

bool ReqSyncOperator::HasRoom() const {
  if (node_->max_buffered_rows > 0 &&
      entries_.size() >= node_->max_buffered_rows) {
    return false;
  }
  if (node_->max_buffered_bytes > 0 &&
      buffered_bytes_ >= node_->max_buffered_bytes) {
    return false;
  }
  // Memory governor: when the query budget has no headroom, stop
  // pulling from the child while anything is buffered — in-flight
  // completions drain the buffer and release its charge. With nothing
  // buffered the next tuple must be admitted regardless (ForceAdd) or
  // the query could never make progress.
  if (mem_.budget() != nullptr && !entries_.empty() &&
      mem_.budget()->Available() == 0) {
    return false;
  }
  return true;
}

void ReqSyncOperator::ShedToBudget() {
  // Shed past the node's row/byte bounds, and additionally (in this
  // shed-oldest mode) past an exhausted query memory budget — keeping
  // at least the newest tuple so the operator still makes progress.
  while (!entries_.empty() &&
         ((node_->max_buffered_rows > 0 &&
           entries_.size() > node_->max_buffered_rows) ||
          (node_->max_buffered_bytes > 0 &&
           buffered_bytes_ > node_->max_buffered_bytes) ||
          (mem_.budget() != nullptr && entries_.size() > 1 &&
           mem_.budget()->Available() == 0))) {
    auto it = entries_.begin();  // smallest id = oldest pending tuple
    buffered_bytes_ -= it->second.bytes;
    // Release the dropped tuple's budget charge with it — shedding
    // that kept the charge would leak reservations until Close.
    mem_.Subtract(it->second.bytes);
    entries_.erase(it);
    ++shed_tuples_;
    if (ctx_ != nullptr) ++ctx_->shed_tuples;
  }
}

Status ReqSyncOperator::WaitForRoom() {
  if (node_->shed_oldest) return Status::OK();
  if (!HasBudget() && mem_.budget() == nullptr) return Status::OK();
  while (!HasRoom()) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    // Snapshot before polling so a completion landing mid-poll makes
    // the wait below return immediately (same pattern as Next).
    uint64_t seq = pump_->completion_seq();
    WSQ_ASSIGN_OR_RETURN(bool progressed, PollCompletions());
    if (progressed) continue;
    if (!HasRoom()) {
      BlockedWait(seq);
    }
  }
  return Status::OK();
}

void ReqSyncOperator::Absorb(Row row) {
  std::vector<CallId> pending = row.PendingCalls();
  if (pending.empty()) {
    ready_.push_back(std::move(row));
  } else {
    AddEntry(std::move(row),
             std::set<CallId>(pending.begin(), pending.end()));
  }
}

Status ReqSyncOperator::OpenImpl() {
  entries_.clear();
  waiters_.clear();
  ready_.clear();
  next_entry_id_ = 1;
  buffered_bytes_ = 0;
  mem_.ReleaseAll();
  if (ctx_ != nullptr) mem_.Bind(ctx_->memory);
  peak_buffered_ = 0;
  peak_buffered_bytes_ = 0;
  dropped_tuples_ = 0;
  null_padded_tuples_ = 0;
  shed_tuples_ = 0;
  child_drained_ = false;

  WSQ_RETURN_IF_ERROR(child_->Open());
  if (node_->streaming) {
    // Streaming mode: the child is drained lazily from Next(), so the
    // first completed tuples can flow before every call is issued.
    return Status::OK();
  }
  // Full-buffering implementation, as in the paper: drain the child
  // entirely. Draining is what launches all the asynchronous calls
  // below us — the dependent joins keep producing provisional tuples
  // without waiting for any search to finish. A buffer budget throttles
  // the drain: WaitForRoom blocks on in-flight completions instead of
  // buffering without bound.
  Row row;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_RETURN_IF_ERROR(WaitForRoom());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    Absorb(std::move(row));
  }
  child_drained_ = true;
  return Status::OK();
}

Result<Row> ReqSyncOperator::PatchRow(const Row& row, CallId call,
                                      const Row& values) {
  Row out;
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row.value(i);
    if (v.is_placeholder() && v.AsPlaceholder().call == call) {
      int32_t field = v.AsPlaceholder().field;
      if (field < 0 || static_cast<size_t>(field) >= values.size()) {
        return Status::Internal(StrFormat(
            "call result has %zu fields, placeholder wants field %d",
            values.size(), field));
      }
      out.Append(values.value(static_cast<size_t>(field)));
    } else {
      out.Append(v);
    }
  }
  return out;
}

Status ReqSyncOperator::DegradeFailedCall(CallId call,
                                          const Status& error) {
  if (ctx_ != nullptr) ++ctx_->failed_calls;

  // Un-register the call first in every policy: its result has already
  // been consumed, so leaving it in waiters_ would make Close() block
  // forever trying to reap it again.
  std::vector<uint64_t> ids;
  auto waiting = waiters_.find(call);
  if (waiting != waiters_.end()) {
    ids = std::move(waiting->second);
    waiters_.erase(waiting);
  }
  if (node_->on_call_error == OnCallError::kFailQuery) return error;

  for (uint64_t id : ids) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // stale (see ProcessCompletion)

    if (node_->on_call_error == OnCallError::kDropTuple) {
      // Cancel the tuple exactly as a zero-row result would (§4.3
      // n = 0); its references under OTHER calls go stale and are
      // skipped there.
      buffered_bytes_ -= it->second.bytes;
      mem_.Subtract(it->second.bytes);
      entries_.erase(it);
      ++dropped_tuples_;
      if (ctx_ != nullptr) ++ctx_->dropped_tuples;
      continue;
    }

    // kNullPad: fill the columns this call would have produced with
    // NULL and keep the tuple moving.
    Entry entry = std::move(it->second);
    buffered_bytes_ -= entry.bytes;
    mem_.Subtract(entry.bytes);
    entries_.erase(it);
    entry.pending.erase(call);
    Row padded;
    for (size_t i = 0; i < entry.row.size(); ++i) {
      const Value& v = entry.row.value(i);
      if (v.is_placeholder() && v.AsPlaceholder().call == call) {
        padded.Append(Value::Null());
      } else {
        padded.Append(v);
      }
    }
    ++null_padded_tuples_;
    if (ctx_ != nullptr) ++ctx_->null_padded_tuples;
    if (entry.pending.empty()) {
      ready_.push_back(std::move(padded));
    } else {
      AddEntry(std::move(padded), entry.pending);
    }
  }
  return Status::OK();
}

Status ReqSyncOperator::ProcessCompletion(CallId call,
                                          const CallResult& result) {
  if (tracer() != nullptr) {
    // Recorded on the query thread from the timing the pump attached to
    // the result, so the cross-thread call is visible in the trace.
    tracer()->Event(
        "reqsync", result.status.ok() ? "complete" : "failed",
        StrFormat("call=%llu rows=%zu queue_wait=%lld us in_flight=%lld us",
                  (unsigned long long)call, result.rows.size(),
                  (long long)result.queue_wait_micros,
                  (long long)result.in_flight_micros));
    if (result.status.ok() && result.rows.size() > 1) {
      tracer()->Event("reqsync", "proliferate",
                      StrFormat("call=%llu copies=%zu",
                                (unsigned long long)call,
                                result.rows.size()));
    }
  }
  if (!result.status.ok()) {
    return DegradeFailedCall(call, result.status);
  }
  if (result.degraded_shards > 0) {
    // OK but degraded: a sharded backend answered from a strict subset
    // of its shards. The tuples are patched normally — the quorum
    // policy already accepted the loss — but the coverage gap is
    // surfaced in QueryStats and EXPLAIN ANALYZE.
    CountPartialResult(result.degraded_shards);
    if (ctx_ != nullptr) {
      ++ctx_->partial_results;
      ctx_->degraded_shards += result.degraded_shards;
    }
    if (tracer() != nullptr) {
      tracer()->Event("reqsync", "partial",
                      StrFormat("call=%llu degraded_shards=%u",
                                (unsigned long long)call,
                                result.degraded_shards));
    }
  }

  auto waiting = waiters_.find(call);
  if (waiting == waiters_.end()) return Status::OK();
  std::vector<uint64_t> ids = std::move(waiting->second);
  waiters_.erase(waiting);

  for (uint64_t id : ids) {
    auto it = entries_.find(id);
    // Stale reference: the tuple was proliferated (and re-registered
    // under new ids) or cancelled by another call's completion.
    if (it == entries_.end()) continue;
    Entry entry = std::move(it->second);
    buffered_bytes_ -= entry.bytes;
    mem_.Subtract(entry.bytes);
    entries_.erase(it);
    entry.pending.erase(call);

    // n = 0 → cancellation; n = 1 → completion; n > 1 → proliferation
    // (paper §4.3). Copies keep placeholders for other pending calls.
    for (const Row& values : result.rows) {
      WSQ_ASSIGN_OR_RETURN(Row patched,
                           PatchRow(entry.row, call, values));
      if (entry.pending.empty()) {
        ready_.push_back(std::move(patched));
      } else {
        AddEntry(std::move(patched), entry.pending);
      }
    }
  }
  return Status::OK();
}

Status ReqSyncOperator::CloseImpl() {
  // A query killed by its governor must not wait out its calls'
  // natural latencies: cancel them first — CancelCall resolves a
  // not-yet-complete call immediately (dropping it from the queue or
  // abandoning its dispatch) — then reap, which never blocks because a
  // result is guaranteed to be present either way.
  const bool aborted = !CheckAlive().ok();
  for (const auto& [call, ids] : waiters_) {
    if (aborted && pump_->CancelCall(call)) {
      if (ctx_ != nullptr) ++ctx_->cancelled_calls;
    }
    // Reap only: the query is over, the result (and its error, if any)
    // no longer has a consumer.
    WSQ_IGNORE_STATUS(pump_->TakeBlocking(call));
  }
  waiters_.clear();
  entries_.clear();
  ready_.clear();
  buffered_bytes_ = 0;
  RecordPeakBytes(mem_.peak_bytes());
  mem_.ReleaseAll();
  return child_->Close();
}

Result<bool> ReqSyncOperator::PollCompletions() {
  bool progressed = false;
  std::vector<CallId> calls;
  calls.reserve(waiters_.size());
  for (const auto& [call, ids] : waiters_) calls.push_back(call);
  for (CallId call : calls) {
    CallResult result;
    if (pump_->TryTake(call, &result)) {
      WSQ_RETURN_IF_ERROR(ProcessCompletion(call, result));
      progressed = true;
    }
  }
  return progressed;
}

Result<bool> ReqSyncOperator::NextImpl(Row* row) {
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    if (!ready_.empty()) {
      *row = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }

    if (!child_drained_) {
      // Streaming mode: pull the next child tuple (which launches its
      // calls) and absorb any completions that have already landed.
      // The buffer budget throttles the pull exactly as in Open.
      WSQ_RETURN_IF_ERROR(WaitForRoom());
      Row input;
      WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
      if (more) {
        Absorb(std::move(input));
      } else {
        child_drained_ = true;
      }
      WSQ_RETURN_IF_ERROR(PollCompletions().status());
      continue;
    }

    if (entries_.empty()) return false;

    // Snapshot the completion sequence BEFORE scanning so a completion
    // that lands mid-scan is not missed (it would bump the sequence and
    // make the wait below return immediately).
    uint64_t seq = pump_->completion_seq();
    WSQ_ASSIGN_OR_RETURN(bool progressed, PollCompletions());
    if (!progressed && ready_.empty() && !entries_.empty()) {
      BlockedWait(seq);
    }
  }
}

}  // namespace wsq
