#include "exec/join_ops.h"

#include "common/macros.h"

namespace wsq {

Status NestedLoopJoinOperator::OpenImpl() {
  WSQ_RETURN_IF_ERROR(left_->Open());
  WSQ_RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  mem_.ReleaseAll();
  if (ctx_ != nullptr) mem_.Bind(ctx_->memory);
  Row row;
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    size_t delta = row.ApproxBytes() + sizeof(Row);
    if (!mem_.TryAdd(delta)) mem_.ForceAdd(delta);
    right_rows_.push_back(row);
  }
  WSQ_RETURN_IF_ERROR(right_->Close());
  have_left_ = false;
  right_pos_ = 0;
  RecordPeakBytes(mem_.peak_bytes());
  return Status::OK();
}

Result<bool> NestedLoopJoinOperator::NextImpl(Row* row) {
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    if (!have_left_) {
      WSQ_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Row candidate = Row::Concat(left_row_, right_rows_[right_pos_]);
      ++right_pos_;
      if (node_ != nullptr) {
        WSQ_ASSIGN_OR_RETURN(bool pass,
                             EvalPredicate(node_->predicate(), candidate));
        if (!pass) continue;
      }
      *row = std::move(candidate);
      return true;
    }
    have_left_ = false;
  }
}

Status NestedLoopJoinOperator::CloseImpl() {
  right_rows_.clear();
  mem_.ReleaseAll();
  return left_->Close();
}

Status DependentJoinOperator::OpenImpl() {
  WSQ_RETURN_IF_ERROR(left_->Open());
  have_left_ = false;
  right_open_ = false;
  return Status::OK();
}

Result<bool> DependentJoinOperator::NextImpl(Row* row) {
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    if (!have_left_) {
      WSQ_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;

      std::vector<std::pair<size_t, Value>> bindings;
      bindings.reserve(node_->bindings().size());
      for (const DependentJoinNode::Binding& b : node_->bindings()) {
        if (b.left_column >= left_row_.size()) {
          return Status::Internal(
              "dependent join binding out of range");
        }
        // Bounded by the plan's binding count, consumed immediately.
        // wsqlint: allow(unbounded-op-growth)
        bindings.emplace_back(b.term_index,
                              left_row_.value(b.left_column));
      }
      right_->BindTerms(std::move(bindings));
      WSQ_RETURN_IF_ERROR(right_->Open());
      right_open_ = true;
    }
    Row right_row;
    WSQ_ASSIGN_OR_RETURN(bool more, right_->Next(&right_row));
    if (!more) {
      WSQ_RETURN_IF_ERROR(right_->Close());
      right_open_ = false;
      have_left_ = false;
      continue;
    }
    *row = Row::Concat(left_row_, right_row);
    return true;
  }
}

Status DependentJoinOperator::CloseImpl() {
  if (right_open_) {
    WSQ_RETURN_IF_ERROR(right_->Close());
    right_open_ = false;
  }
  return left_->Close();
}

}  // namespace wsq
