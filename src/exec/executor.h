#ifndef WSQ_EXEC_EXECUTOR_H_
#define WSQ_EXEC_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "async/req_pump.h"
#include "common/cancellation.h"
#include "common/memory.h"
#include "exec/operator.h"
#include "net/shard_policy.h"
#include "obs/op_profile.h"
#include "obs/trace.h"
#include "plan/logical_plan.h"

namespace wsq {

class SpillManager;  // storage/spill.h

/// Shared execution state: the ReqPump for asynchronous calls plus a
/// counter of synchronous (blocking) external calls, so QueryStats can
/// report call counts for both execution strategies. The degradation
/// counters are bumped by ReqSync operators applying an OnCallError
/// policy (kDropTuple / kNullPad) so QueryStats can report how much of
/// the answer was affected by failed external calls.
struct ExecContext {
  ReqPump* pump = nullptr;
  /// Per-query governor state: deadline + cooperative cancellation.
  /// BuildOperatorTree installs it on every operator; null = ungoverned.
  /// Must outlive the operator tree.
  const CancellationToken* token = nullptr;
  /// Per-query trace recorder; null = tracing off. Owned by the caller,
  /// used only from the executor thread.
  Tracer* tracer = nullptr;
  /// When true, BuildOperatorTree enables per-operator profiling
  /// (EXPLAIN ANALYZE) on every operator it creates.
  bool profile = false;
  /// Per-query partial-result policy for sharded search backends;
  /// copied into every VTableRequest the scans build.
  ShardOptions shard;
  /// Per-query memory budget (child of the database budget); null =
  /// ungoverned. Operators charge their materialized state here and
  /// degrade (spill, backpressure) when a reservation fails. Must
  /// outlive the operator tree.
  MemoryBudget* memory = nullptr;
  /// Spill scratch-file factory; null disables spilling (a failed
  /// reservation then fails the query with kResourceExhausted).
  SpillManager* spill = nullptr;
  std::atomic<uint64_t> sync_external_calls{0};
  /// External calls that completed with a non-OK status.
  std::atomic<uint64_t> failed_calls{0};
  /// Tuples cancelled under OnCallError::kDropTuple.
  std::atomic<uint64_t> dropped_tuples{0};
  /// Tuples completed with NULLs under OnCallError::kNullPad.
  std::atomic<uint64_t> null_padded_tuples{0};
  /// Outstanding external calls cancelled by the Close cascade of an
  /// aborted (cancelled / deadline-expired) query.
  std::atomic<uint64_t> cancelled_calls{0};
  /// Pending tuples shed by a ReqSync buffer budget in shed-oldest mode.
  std::atomic<uint64_t> shed_tuples{0};
  /// Peak pending tuples / approximate bytes buffered by any ReqSync
  /// (max across operators; see ReqSyncNode::max_buffered_rows).
  std::atomic<uint64_t> reqsync_peak_rows{0};
  std::atomic<uint64_t> reqsync_peak_bytes{0};
  /// External calls that completed OK but merged from a strict subset
  /// of shards (quorum / best-effort degradation), and the total shards
  /// missing across those calls (CallResult::degraded_shards).
  std::atomic<uint64_t> partial_results{0};
  std::atomic<uint64_t> degraded_shards{0};
  /// Memory governor: bytes written to spill runs / runs written by
  /// Sort+Aggregate operators degrading under a failed reservation.
  std::atomic<uint64_t> spilled_bytes{0};
  std::atomic<uint64_t> spill_runs{0};
};

/// A fully-materialized query result.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  /// Fixed-width table rendering with a header row.
  std::string ToString(size_t max_rows = 0) const;
};

/// Compiles a logical plan into a physical operator tree. `ctx->pump`
/// is required when the plan contains asynchronous scans or ReqSyncs;
/// `ctx` must outlive the returned operators.
Result<OperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                      ExecContext* ctx);

/// Builds, opens, drains, and closes the plan. With `profile_out`
/// non-null, `ctx->profile` is forced on and the annotated operator
/// tree (EXPLAIN ANALYZE) is written there on success.
Result<ResultSet> ExecutePlan(const PlanNode& plan, ExecContext* ctx,
                              PlanProfileNode* profile_out = nullptr);

}  // namespace wsq

#endif  // WSQ_EXEC_EXECUTOR_H_
