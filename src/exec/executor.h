#ifndef WSQ_EXEC_EXECUTOR_H_
#define WSQ_EXEC_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "async/req_pump.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Shared execution state: the ReqPump for asynchronous calls plus a
/// counter of synchronous (blocking) external calls, so QueryStats can
/// report call counts for both execution strategies. The degradation
/// counters are bumped by ReqSync operators applying an OnCallError
/// policy (kDropTuple / kNullPad) so QueryStats can report how much of
/// the answer was affected by failed external calls.
struct ExecContext {
  ReqPump* pump = nullptr;
  std::atomic<uint64_t> sync_external_calls{0};
  /// External calls that completed with a non-OK status.
  std::atomic<uint64_t> failed_calls{0};
  /// Tuples cancelled under OnCallError::kDropTuple.
  std::atomic<uint64_t> dropped_tuples{0};
  /// Tuples completed with NULLs under OnCallError::kNullPad.
  std::atomic<uint64_t> null_padded_tuples{0};
};

/// A fully-materialized query result.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  /// Fixed-width table rendering with a header row.
  std::string ToString(size_t max_rows = 0) const;
};

/// Compiles a logical plan into a physical operator tree. `ctx->pump`
/// is required when the plan contains asynchronous scans or ReqSyncs;
/// `ctx` must outlive the returned operators.
Result<OperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                      ExecContext* ctx);

/// Builds, opens, drains, and closes the plan.
Result<ResultSet> ExecutePlan(const PlanNode& plan, ExecContext* ctx);

}  // namespace wsq

#endif  // WSQ_EXEC_EXECUTOR_H_
