#ifndef WSQ_EXEC_OPERATOR_H_
#define WSQ_EXEC_OPERATOR_H_

#include <memory>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "types/row.h"
#include "types/schema.h"

namespace wsq {

/// Physical operator in the paper's iterator model [Gra93]: Open /
/// GetNext (here `Next`) / Close. `schema` points into the logical plan
/// node, which outlives the operator tree.
///
/// Cooperative cancellation: BuildOperatorTree installs the query's
/// CancellationToken on every operator; loops that can run long — per
/// tuple in Next, per child row in a blocking Open drain — call
/// CheckAlive() so a cancelled or deadline-expired query aborts between
/// tuples (kCancelled / kDeadlineExceeded) instead of running to
/// completion. The executor's error-path Close cascade then reaps any
/// outstanding external calls.
class Operator {
 public:
  explicit Operator(const Schema* schema) : schema_(schema) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual Status Open() = 0;

  /// Produces the next tuple into `row`; returns false at end of
  /// stream. `row` is only valid when true is returned.
  virtual Result<bool> Next(Row* row) = 0;

  virtual Status Close() = 0;

  const Schema& schema() const { return *schema_; }

  /// Installs the query's cancellation token (may be null: ungoverned
  /// query). Called once by BuildOperatorTree before Open.
  void SetCancelToken(const CancellationToken* token) { cancel_ = token; }

 protected:
  /// OK while the query may keep running; kCancelled/kDeadlineExceeded
  /// once the governor has pulled the plug.
  Status CheckAlive() const {
    return cancel_ == nullptr ? Status::OK() : cancel_->CheckAlive();
  }

  const CancellationToken* cancel_token() const { return cancel_; }

 private:
  const Schema* schema_;
  const CancellationToken* cancel_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// A virtual table scan that receives dependent-join bindings before
/// each (re-)Open: term index (1-based) → value.
class VScanOperator : public Operator {
 public:
  explicit VScanOperator(const Schema* schema) : Operator(schema) {}

  /// Replaces the dependent term bindings; takes effect at next Open().
  virtual void BindTerms(
      std::vector<std::pair<size_t, Value>> bindings) = 0;
};

}  // namespace wsq

#endif  // WSQ_EXEC_OPERATOR_H_
