#ifndef WSQ_EXEC_OPERATOR_H_
#define WSQ_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/op_profile.h"
#include "obs/trace.h"
#include "types/row.h"
#include "types/schema.h"

namespace wsq {

/// Physical operator in the paper's iterator model [Gra93]: Open /
/// GetNext (here `Next`) / Close. `schema` points into the logical plan
/// node, which outlives the operator tree.
///
/// Cooperative cancellation: BuildOperatorTree installs the query's
/// CancellationToken on every operator; loops that can run long — per
/// tuple in Next, per child row in a blocking Open drain — call
/// CheckAlive() so a cancelled or deadline-expired query aborts between
/// tuples (kCancelled / kDeadlineExceeded) instead of running to
/// completion. The executor's error-path Close cascade then reaps any
/// outstanding external calls.
///
/// Observability: Open/Next/Close are non-virtual wrappers around the
/// OpenImpl/NextImpl/CloseImpl virtuals. With profiling enabled
/// (EXPLAIN ANALYZE) the wrappers accumulate an OpProfile — call
/// counts, rows out, per-phase wall time; with a tracer attached they
/// additionally emit "op" spans for Open and Close (Next is aggregated,
/// never per-call, to keep span budgets sane). When neither is on, the
/// wrapper is a single branch on top of the virtual call.
class Operator {
 public:
  explicit Operator(const Schema* schema) : schema_(schema) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  Status Open() {
    if (!profile_on_ && tracer_ == nullptr) return OpenImpl();
    return OpenInstrumented();
  }

  /// Produces the next tuple into `row`; returns false at end of
  /// stream. `row` is only valid when true is returned.
  Result<bool> Next(Row* row) {
    if (!profile_on_) return NextImpl(row);
    int64_t start = NowMicros();
    Result<bool> got = NextImpl(row);
    profile_.next_calls++;
    profile_.next_micros += NowMicros() - start;
    if (got.ok() && got.value()) profile_.rows_out++;
    return got;
  }

  Status Close() {
    if (!profile_on_ && tracer_ == nullptr) return CloseImpl();
    return CloseInstrumented();
  }

  const Schema& schema() const { return *schema_; }

  /// Installs the query's cancellation token (may be null: ungoverned
  /// query). Called once by BuildOperatorTree before Open.
  void SetCancelToken(const CancellationToken* token) { cancel_ = token; }

  /// Attaches the query's tracer and/or enables profiling. Called once
  /// by BuildOperatorTree before Open; `label` is the plan node label
  /// used in spans and the EXPLAIN ANALYZE tree.
  void SetObservability(Tracer* tracer, bool profile, std::string label) {
    tracer_ = tracer;
    profile_on_ = profile;
    label_ = std::move(label);
  }

  const OpProfile& profile() const { return profile_; }
  const std::string& label() const { return label_; }

  /// Builds this operator's annotated-plan subtree (EXPLAIN ANALYZE).
  /// self time = own total minus the children's totals, clamped at 0.
  PlanProfileNode BuildProfileTree() const;

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* row) = 0;
  virtual Status CloseImpl() = 0;

  /// OK while the query may keep running; kCancelled/kDeadlineExceeded
  /// once the governor has pulled the plug.
  Status CheckAlive() const {
    return cancel_ == nullptr ? Status::OK() : cancel_->CheckAlive();
  }

  const CancellationToken* cancel_token() const { return cancel_; }

  /// Null when tracing is off; instrumentation sites branch on it.
  Tracer* tracer() const { return tracer_; }
  bool profiling() const { return profile_on_; }

  /// Mutable profile hooks for subclasses that track operator-specific
  /// costs (external calls issued, ReqSync blocked time).
  void CountCallIssued() { profile_.calls_issued++; }
  void AddBlockedMicros(int64_t micros) {
    profile_.blocked_on_sync_micros += micros;
  }
  void CountPartialResult(uint64_t degraded) {
    profile_.partial_results++;
    profile_.degraded_shards += degraded;
  }
  /// Memory-governor hooks: bytes written to a spill run, and the
  /// high-water mark of this operator's tracked reservation. Recorded
  /// unconditionally (not gated on profile_on_) — they are cheap and
  /// the shell's degradation notice needs them even without \analyze.
  void CountSpill(uint64_t bytes, uint64_t runs) {
    profile_.spilled_bytes += bytes;
    profile_.spill_runs += runs;
  }
  void RecordPeakBytes(uint64_t bytes) {
    if (bytes > profile_.peak_bytes) profile_.peak_bytes = bytes;
  }

  /// Registers a child for the profile tree; subclasses that own child
  /// operators call this from their constructor. `child` must outlive
  /// this operator (it does: the tree owns children via OperatorPtr).
  void AddChild(const Operator* child) { children_.push_back(child); }

 private:
  Status OpenInstrumented();
  Status CloseInstrumented();

  const Schema* schema_;
  const CancellationToken* cancel_ = nullptr;
  Tracer* tracer_ = nullptr;
  bool profile_on_ = false;
  std::string label_;
  OpProfile profile_;
  std::vector<const Operator*> children_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// A virtual table scan that receives dependent-join bindings before
/// each (re-)Open: term index (1-based) → value.
class VScanOperator : public Operator {
 public:
  explicit VScanOperator(const Schema* schema) : Operator(schema) {}

  /// Replaces the dependent term bindings; takes effect at next Open().
  virtual void BindTerms(
      std::vector<std::pair<size_t, Value>> bindings) = 0;
};

}  // namespace wsq

#endif  // WSQ_EXEC_OPERATOR_H_
