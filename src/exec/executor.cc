#include "exec/executor.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/basic_ops.h"
#include "exec/join_ops.h"
#include "exec/req_sync_op.h"
#include "exec/scan_ops.h"
#include "exec/sort_agg_ops.h"

namespace wsq {

namespace {

Result<std::unique_ptr<VScanOperator>> BuildVScan(const EVScanNode& node,
                                                  ExecContext* ctx) {
  std::unique_ptr<VScanOperator> scan;
  if (node.async) {
    if (ctx->pump == nullptr) {
      return Status::InvalidArgument(
          "plan contains an AEVScan but no ReqPump was supplied");
    }
    auto async_scan = std::make_unique<AEVScanOperator>(&node, ctx->pump);
    async_scan->SetShardOptions(ctx->shard);
    scan = std::move(async_scan);
  } else {
    auto sync_scan = std::make_unique<EVScanOperator>(
        &node, &ctx->sync_external_calls);
    sync_scan->SetShardOptions(ctx->shard);
    scan = std::move(sync_scan);
  }
  scan->SetCancelToken(ctx->token);
  scan->SetObservability(ctx->tracer, ctx->profile, node.Label());
  return scan;
}

}  // namespace

Result<OperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                      ExecContext* ctx) {
  OperatorPtr op;
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      op = std::make_unique<SeqScanOperator>(
          static_cast<const ScanNode*>(&plan));
      break;

    case PlanNode::Kind::kIndexScan:
      op = std::make_unique<IndexScanOperator>(
          static_cast<const IndexScanNode*>(&plan));
      break;

    case PlanNode::Kind::kEVScan: {
      WSQ_ASSIGN_OR_RETURN(
          std::unique_ptr<VScanOperator> scan,
          BuildVScan(static_cast<const EVScanNode&>(plan), ctx));
      op = std::move(scan);
      break;
    }

    case PlanNode::Kind::kFilter: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<FilterOperator>(
          static_cast<const FilterNode*>(&plan), std::move(child));
      break;
    }

    case PlanNode::Kind::kProject: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<ProjectOperator>(
          static_cast<const ProjectNode*>(&plan), std::move(child));
      break;
    }

    case PlanNode::Kind::kNestedLoopJoin: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr left,
                           BuildOperatorTree(*plan.child(0), ctx));
      WSQ_ASSIGN_OR_RETURN(OperatorPtr right,
                           BuildOperatorTree(*plan.child(1), ctx));
      op = std::make_unique<NestedLoopJoinOperator>(
          static_cast<const NestedLoopJoinNode*>(&plan), std::move(left),
          std::move(right), ctx);
      break;
    }

    case PlanNode::Kind::kCrossProduct: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr left,
                           BuildOperatorTree(*plan.child(0), ctx));
      WSQ_ASSIGN_OR_RETURN(OperatorPtr right,
                           BuildOperatorTree(*plan.child(1), ctx));
      op = std::make_unique<CrossProductOperator>(
          static_cast<const CrossProductNode*>(&plan), std::move(left),
          std::move(right), ctx);
      break;
    }

    case PlanNode::Kind::kDependentJoin: {
      if (plan.child(1)->kind() != PlanNode::Kind::kEVScan) {
        return Status::Internal(
            "dependent join requires an EVScan as its right child "
            "(plan rewrite produced: " +
            plan.child(1)->Label() + ")");
      }
      WSQ_ASSIGN_OR_RETURN(OperatorPtr left,
                           BuildOperatorTree(*plan.child(0), ctx));
      WSQ_ASSIGN_OR_RETURN(
          std::unique_ptr<VScanOperator> right,
          BuildVScan(static_cast<const EVScanNode&>(*plan.child(1)),
                     ctx));
      op = std::make_unique<DependentJoinOperator>(
          static_cast<const DependentJoinNode*>(&plan), std::move(left),
          std::move(right));
      break;
    }

    case PlanNode::Kind::kSort: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<SortOperator>(
          static_cast<const SortNode*>(&plan), std::move(child), ctx);
      break;
    }

    case PlanNode::Kind::kDistinct: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<DistinctOperator>(
          static_cast<const DistinctNode*>(&plan), std::move(child), ctx);
      break;
    }

    case PlanNode::Kind::kAggregate: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<AggregateOperator>(
          static_cast<const AggregateNode*>(&plan), std::move(child), ctx);
      break;
    }

    case PlanNode::Kind::kLimit: {
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<LimitOperator>(
          static_cast<const LimitNode*>(&plan), std::move(child));
      break;
    }

    case PlanNode::Kind::kReqSync: {
      if (ctx->pump == nullptr) {
        return Status::InvalidArgument(
            "plan contains a ReqSync but no ReqPump was supplied");
      }
      WSQ_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperatorTree(*plan.child(0), ctx));
      op = std::make_unique<ReqSyncOperator>(
          static_cast<const ReqSyncNode*>(&plan), std::move(child),
          ctx->pump, ctx);
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan node kind");
  op->SetCancelToken(ctx->token);
  op->SetObservability(ctx->tracer, ctx->profile, plan.Label());
  return op;
}

Result<ResultSet> ExecutePlan(const PlanNode& plan, ExecContext* ctx,
                              PlanProfileNode* profile_out) {
  if (profile_out != nullptr) ctx->profile = true;
  WSQ_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperatorTree(plan, ctx));
  ResultSet result;
  result.schema = plan.schema();

  Status opened = root->Open();
  if (!opened.ok()) {
    // A blocking operator (e.g. Sort) drains its child inside Open, so
    // a degraded-call error can surface here too: Close anyway so
    // ReqSync reaps its outstanding calls instead of leaking them.
    // The Open error is the one the caller needs to see.
    WSQ_IGNORE_STATUS(root->Close());
    return opened;
  }
  Row row;
  while (true) {
    auto more = root->Next(&row);
    if (!more.ok()) {
      // Reap outstanding calls even on error; the Next error wins.
      WSQ_IGNORE_STATUS(root->Close());
      return more.status();
    }
    if (!*more) break;
    result.rows.push_back(std::move(row));
  }
  WSQ_RETURN_IF_ERROR(root->Close());
  if (profile_out != nullptr) *profile_out = root->BuildProfileTree();
  return result;
}

std::string ResultSet::ToString(size_t max_rows) const {
  size_t n = rows.size();
  if (max_rows > 0) n = std::min(n, max_rows);

  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  header.reserve(schema.NumColumns());
  for (const Column& c : schema.columns()) {
    header.push_back(c.QualifiedName());
  }
  cells.push_back(header);
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> line;
    line.reserve(rows[r].size());
    for (const Value& v : rows[r].values()) {
      line.push_back(v.is_string() ? v.AsString() : v.ToString());
    }
    cells.push_back(std::move(line));
  }

  std::vector<size_t> widths(schema.NumColumns(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
  }

  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t c = 0; c < cells[i].size(); ++c) {
      out += cells[i][c];
      if (c + 1 < cells[i].size()) {
        out.append(widths[c] - cells[i][c].size() + 2, ' ');
      }
    }
    out += '\n';
    if (i == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      out.append(total, '-');
      out += '\n';
    }
  }
  if (n < rows.size()) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

}  // namespace wsq
