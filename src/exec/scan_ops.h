#ifndef WSQ_EXEC_SCAN_OPS_H_
#define WSQ_EXEC_SCAN_OPS_H_

#include <atomic>
#include <optional>
#include <vector>

#include "async/req_pump.h"
#include "catalog/catalog.h"
#include "exec/operator.h"
#include "net/shard_policy.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Stored-table sequential scan.
class SeqScanOperator : public Operator {
 public:
  explicit SeqScanOperator(const ScanNode* node)
      : Operator(&node->schema()), node_(node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  const ScanNode* node_;
  std::optional<TableScanner> scanner_;
};

/// Equality lookup through a B+ tree index.
class IndexScanOperator : public Operator {
 public:
  explicit IndexScanOperator(const IndexScanNode* node)
      : Operator(&node->schema()), node_(node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  const IndexScanNode* node_;
  std::vector<Rid> rids_;
  size_t next_ = 0;
};

/// Shared logic for external virtual table scans: assembling the
/// VTableRequest from constants plus dependent bindings.
class VScanBase : public VScanOperator {
 public:
  explicit VScanBase(const EVScanNode* node)
      : VScanOperator(&node->schema()), node_(node) {}

  void BindTerms(
      std::vector<std::pair<size_t, Value>> bindings) override {
    bound_terms_ = std::move(bindings);
  }

  /// Per-query shard policy stamped onto every request this scan builds
  /// (ExecContext::shard; see net/shard_policy.h).
  void SetShardOptions(const ShardOptions& shard) { shard_ = shard; }

 protected:
  /// Builds the request; fails if any term is missing or NULL.
  Result<VTableRequest> BuildRequest() const;

  /// Leading (input-column) values shared by every emitted row.
  Result<std::vector<Value>> InputValues(
      const VTableRequest& request) const;

  const EVScanNode* node_;
  std::vector<std::pair<size_t, Value>> bound_terms_;
  ShardOptions shard_;
};

/// Blocking external scan: one synchronous call per Open (paper's
/// baseline execution).
class EVScanOperator : public VScanBase {
 public:
  /// `call_counter` (optional) is bumped once per blocking external
  /// call, for QueryStats.
  EVScanOperator(const EVScanNode* node,
                 std::atomic<uint64_t>* call_counter = nullptr)
      : VScanBase(node), call_counter_(call_counter) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  std::atomic<uint64_t>* call_counter_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

/// Asynchronous external scan (paper §4.1): Open registers the call
/// with ReqPump; Next immediately returns ONE provisional tuple whose
/// output attributes are placeholders naming the call. A ReqSync
/// operator above patches, cancels, or proliferates it later.
class AEVScanOperator : public VScanBase {
 public:
  AEVScanOperator(const EVScanNode* node, ReqPump* pump)
      : VScanBase(node), pump_(pump) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Status CloseImpl() override;

 private:
  ReqPump* pump_;
  CallId call_ = kInvalidCallId;
  std::vector<Value> inputs_;
  bool emitted_ = false;
};

}  // namespace wsq

#endif  // WSQ_EXEC_SCAN_OPS_H_
