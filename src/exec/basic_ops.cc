#include "exec/basic_ops.h"

#include "common/macros.h"

namespace wsq {

Result<bool> FilterOperator::NextImpl(Row* row) {
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    WSQ_ASSIGN_OR_RETURN(bool pass,
                         EvalPredicate(node_->predicate(), *row));
    if (pass) return true;
  }
}

Result<bool> ProjectOperator::NextImpl(Row* row) {
  Row input;
  WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
  if (!more) return false;
  Row out;
  for (const BoundExprPtr& e : node_->exprs()) {
    WSQ_ASSIGN_OR_RETURN(Value v, e->Eval(input));
    out.Append(std::move(v));
  }
  *row = std::move(out);
  return true;
}

Result<bool> LimitOperator::NextImpl(Row* row) {
  if (emitted_ >= node_->limit()) return false;
  WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(row));
  if (!more) return false;
  ++emitted_;
  return true;
}

Result<bool> DistinctOperator::NextImpl(Row* row) {
  while (true) {
    WSQ_RETURN_IF_ERROR(CheckAlive());
    WSQ_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    if (seen_.insert(*row).second) {
      size_t delta = row->ApproxBytes() + sizeof(Row);
      if (!mem_.TryAdd(delta)) mem_.ForceAdd(delta);
      return true;
    }
  }
}

}  // namespace wsq
