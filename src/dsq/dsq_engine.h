#ifndef WSQ_DSQ_DSQ_ENGINE_H_
#define WSQ_DSQ_DSQ_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "net/search_service.h"
#include "wsq/database.h"

namespace wsq {

/// Database-Supported Web Queries (paper §1): given a keyword phrase,
/// use the Web to correlate it with values stored in the database —
/// "DSQ could identify the states and the movies that appear on the Web
/// most often near the phrase 'scuba diving', and might even find
/// state/movie/scuba-diving triples".
///
/// Every candidate term from the named database columns triggers one
/// WebCount-style search ("<term> near <phrase>"); all searches are
/// issued concurrently through the database's ReqPump, so DSQ gets the
/// same asynchronous-iteration speedup as WSQ queries.
class DsqEngine {
 public:
  struct Options {
    /// Top terms reported per ranking.
    size_t top_k = 10;
    /// How many leading terms per source column feed the pair search.
    size_t pair_seed_terms = 4;
    /// Also correlate pairs of terms drawn from different columns
    /// (the "state/movie/scuba-diving triples" of §1).
    bool include_pairs = false;
    /// Drop terms/pairs whose co-occurrence count is zero.
    bool drop_zero_counts = true;
  };

  struct TermScore {
    std::string term;
    std::string source;  // "Table.Column"
    int64_t count = 0;
  };

  struct PairScore {
    std::string term_a;
    std::string term_b;
    int64_t count = 0;
  };

  struct Explanation {
    std::string phrase;
    /// All candidate terms ranked by co-occurrence count (descending),
    /// truncated to top_k.
    std::vector<TermScore> terms;
    /// Cross-column pairs ranked likewise (only when include_pairs).
    std::vector<PairScore> pairs;
    /// Total search engine calls issued.
    uint64_t external_calls = 0;
  };

  /// `db` supplies candidate terms and the ReqPump; `service` performs
  /// the searches. Both must outlive the engine.
  DsqEngine(WsqDatabase* db, SearchService* service)
      : db_(db), service_(service) {}

  /// Correlates `phrase` with the distinct string values of each
  /// "Table.Column" in `source_columns`.
  Result<Explanation> Explain(
      const std::string& phrase,
      const std::vector<std::string>& source_columns,
      const Options& options);
  Result<Explanation> Explain(
      const std::string& phrase,
      const std::vector<std::string>& source_columns) {
    return Explain(phrase, source_columns, Options());
  }

 private:
  /// Distinct string values of "Table.Column", tagged with the source.
  Result<std::vector<TermScore>> CandidateTerms(
      const std::string& source_column) const;

  /// Issues one count call per query string, concurrently; returns the
  /// counts in input order.
  Result<std::vector<int64_t>> CountAll(
      const std::vector<std::string>& queries) const;

  WsqDatabase* db_;
  SearchService* service_;
};

}  // namespace wsq

#endif  // WSQ_DSQ_DSQ_ENGINE_H_
