#include "dsq/dsq_engine.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

Result<std::vector<DsqEngine::TermScore>> DsqEngine::CandidateTerms(
    const std::string& source_column) const {
  std::vector<std::string> parts = Split(source_column, '.');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument(
        "source column must be written Table.Column: " + source_column);
  }
  WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                       db_->catalog()->GetTable(parts[0]));
  WSQ_ASSIGN_OR_RETURN(size_t col, table->schema().Find("", parts[1]));
  if (table->schema().column(col).type != TypeId::kString) {
    return Status::InvalidArgument("DSQ terms must come from a STRING "
                                   "column: " +
                                   source_column);
  }

  std::set<std::string> seen;
  std::vector<TermScore> terms;
  TableScanner scanner(table);
  Row row;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(&row));
    if (!more) break;
    const Value& v = row.value(col);
    if (!v.is_string() || v.AsString().empty()) continue;
    if (!seen.insert(v.AsString()).second) continue;
    terms.push_back(TermScore{v.AsString(), source_column, 0});
  }
  return terms;
}

Result<std::vector<int64_t>> DsqEngine::CountAll(
    const std::vector<std::string>& queries) const {
  ReqPump* pump = db_->pump();
  std::vector<CallId> calls;
  calls.reserve(queries.size());
  for (const std::string& q : queries) {
    SearchRequest req;
    req.kind = SearchRequest::Kind::kCount;
    req.query = q;
    SearchService* service = service_;
    calls.push_back(pump->Register(
        service->name(),
        [service, req = std::move(req)](CallCompletion done) mutable {
          service->Submit(std::move(req), [done](SearchResponse resp) {
            CallResult result;
            result.status = resp.status;
            if (resp.status.ok()) {
              result.rows.push_back(Row({Value::Int(resp.count)}));
            }
            done(std::move(result));
          });
        }));
  }

  std::vector<int64_t> counts;
  counts.reserve(calls.size());
  Status first_error;
  for (CallId id : calls) {
    CallResult result = pump->TakeBlocking(id);
    if (!result.status.ok()) {
      if (first_error.ok()) first_error = result.status;
      counts.push_back(0);
      continue;
    }
    counts.push_back(result.rows[0].value(0).AsInt());
  }
  WSQ_RETURN_IF_ERROR(first_error);
  return counts;
}

Result<DsqEngine::Explanation> DsqEngine::Explain(
    const std::string& phrase,
    const std::vector<std::string>& source_columns,
    const Options& options) {
  if (phrase.empty()) {
    return Status::InvalidArgument("DSQ phrase is empty");
  }
  if (source_columns.empty()) {
    return Status::InvalidArgument("DSQ needs at least one source column");
  }

  Explanation out;
  out.phrase = phrase;

  // Candidate terms, grouped by source for the pair stage.
  std::vector<std::vector<TermScore>> by_source;
  std::vector<TermScore> all;
  for (const std::string& sc : source_columns) {
    WSQ_ASSIGN_OR_RETURN(std::vector<TermScore> terms,
                         CandidateTerms(sc));
    all.insert(all.end(), terms.begin(), terms.end());
    by_source.push_back(std::move(terms));
  }

  // One concurrent search per candidate: "<term> near <phrase>".
  std::vector<std::string> queries;
  queries.reserve(all.size());
  for (const TermScore& t : all) {
    queries.push_back(t.term + " near " + phrase);
  }
  WSQ_ASSIGN_OR_RETURN(std::vector<int64_t> counts, CountAll(queries));
  out.external_calls += queries.size();
  for (size_t i = 0; i < all.size(); ++i) {
    all[i].count = counts[i];
  }

  std::stable_sort(all.begin(), all.end(),
                   [](const TermScore& a, const TermScore& b) {
                     return a.count > b.count;
                   });
  for (const TermScore& t : all) {
    if (options.drop_zero_counts && t.count == 0) continue;
    out.terms.push_back(t);
    if (out.terms.size() >= options.top_k) break;
  }

  if (options.include_pairs && by_source.size() >= 2) {
    // Rank the per-source term lists by their solo scores, then probe
    // cross-source pairs among the leaders.
    for (auto& terms : by_source) {
      for (TermScore& t : terms) {
        for (const TermScore& scored : all) {
          if (scored.term == t.term && scored.source == t.source) {
            t.count = scored.count;
          }
        }
      }
      std::stable_sort(terms.begin(), terms.end(),
                       [](const TermScore& a, const TermScore& b) {
                         return a.count > b.count;
                       });
      if (terms.size() > options.pair_seed_terms) {
        terms.resize(options.pair_seed_terms);
      }
    }

    std::vector<PairScore> pairs;
    std::vector<std::string> pair_queries;
    for (size_t i = 0; i < by_source.size(); ++i) {
      for (size_t j = i + 1; j < by_source.size(); ++j) {
        for (const TermScore& a : by_source[i]) {
          for (const TermScore& b : by_source[j]) {
            pairs.push_back(PairScore{a.term, b.term, 0});
            pair_queries.push_back(a.term + " near " + b.term +
                                   " near " + phrase);
          }
        }
      }
    }
    WSQ_ASSIGN_OR_RETURN(std::vector<int64_t> pair_counts,
                         CountAll(pair_queries));
    out.external_calls += pair_queries.size();
    for (size_t i = 0; i < pairs.size(); ++i) {
      pairs[i].count = pair_counts[i];
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const PairScore& a, const PairScore& b) {
                       return a.count > b.count;
                     });
    for (const PairScore& p : pairs) {
      if (options.drop_zero_counts && p.count == 0) continue;
      out.pairs.push_back(p);
      if (out.pairs.size() >= options.top_k) break;
    }
  }
  return out;
}

}  // namespace wsq
