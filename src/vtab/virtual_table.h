#ifndef WSQ_VTAB_VIRTUAL_TABLE_H_
#define WSQ_VTAB_VIRTUAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "async/req_pump.h"
#include "common/result.h"
#include "net/shard_policy.h"
#include "types/row.h"
#include "types/schema.h"

namespace wsq {

/// Bound inputs for one access to a virtual table (paper §3): the
/// parameterized search expression, the term bindings T1..Tn, and the
/// rank cutoff for ranked tables.
struct VTableRequest {
  /// Parameterized expression ("%1 near %2"); empty selects the table's
  /// default template for `terms.size()` bound terms.
  std::string search_exp;
  std::vector<std::string> terms;
  /// Maximum Rank to return (WebPages); the binder injects the paper's
  /// default (Rank < 20 ⇒ limit 19) when the query has no restriction.
  int64_t rank_limit = 19;
  /// Per-query partial-result policy, forwarded to sharded backends
  /// (ExecOptions::shard → ExecContext → here → SearchRequest::shard).
  ShardOptions shard;
};

/// A table-valued external source: "a program that looks like a table
/// to a query processor, but returns dynamically-generated tuples"
/// (paper §1).
///
/// The schema is a *family*: the number of term columns T1..Tn is fixed
/// per query, not per table (paper §3: "an infinite family of
/// infinitely large virtual tables"). Input columns are
/// [SearchExp, T1..Tn]; output columns follow.
class VirtualTable {
 public:
  virtual ~VirtualTable() = default;

  virtual const std::string& name() const = 0;

  /// ReqPump resource-limit destination (e.g. the engine name); several
  /// virtual tables may share one destination.
  virtual const std::string& destination() const = 0;

  /// Schema instance for `n` bound terms. Columns are qualified with
  /// the table name; the binder re-qualifies for aliases.
  virtual Schema SchemaForTerms(size_t n) const = 0;

  /// Number of trailing output columns in every schema instance.
  virtual size_t NumOutputColumns() const = 0;

  /// True when exactly one output row per request is guaranteed
  /// (WebCount); false when 0..k rows are possible (WebPages).
  virtual bool SingleRowOutput() const = 0;

  /// Name of the rank output column whose `<= k` restrictions the
  /// binder pushes into VTableRequest::rank_limit; empty when the table
  /// has no rank semantics (WebCount).
  virtual std::string RankColumn() const { return ""; }

  /// The SearchExp actually used for `request` — the explicit expression
  /// or, when empty, this table's default template (paper §3: "%1 near
  /// %2 near ... near %n"). Scans use this to fill the SearchExp column
  /// identically on the sync and async paths.
  virtual std::string EffectiveSearchExp(
      const VTableRequest& request) const {
    return request.search_exp;
  }

  /// Synchronous access: complete rows (inputs then outputs), blocking
  /// on the external source. Used by EVScan.
  virtual Result<std::vector<Row>> Fetch(const VTableRequest& request) = 0;

  /// Asynchronous access: registers an external call with `pump` and
  /// returns its id immediately. The call's CallResult rows carry the
  /// OUTPUT columns only; AEVScan pairs them with the already-known
  /// input values via placeholders. `timeout_micros` > 0 sets an
  /// explicit per-call deadline (the query governor passes the
  /// remaining query budget here so no call outlives its query);
  /// <= 0 keeps the pump's default timeout.
  virtual CallId SubmitAsync(const VTableRequest& request, ReqPump* pump,
                             int64_t timeout_micros) = 0;

  /// Convenience: submit with the pump's default timeout.
  CallId SubmitAsync(const VTableRequest& request, ReqPump* pump) {
    return SubmitAsync(request, pump, 0);
  }
};

/// Name → virtual table registry (kept apart from Catalog because
/// virtual tables have no storage and are owned by the database facade).
class VirtualTableRegistry {
 public:
  VirtualTableRegistry() = default;
  VirtualTableRegistry(const VirtualTableRegistry&) = delete;
  VirtualTableRegistry& operator=(const VirtualTableRegistry&) = delete;

  /// Fails with AlreadyExists on duplicate names (case-insensitive).
  Status Register(std::unique_ptr<VirtualTable> table);

  Result<VirtualTable*> Get(const std::string& name) const;
  bool Has(const std::string& name) const { return Get(name).ok(); }

  /// Names in registration order.
  std::vector<std::string> List() const;

 private:
  std::vector<std::unique_ptr<VirtualTable>> tables_;
};

}  // namespace wsq

#endif  // WSQ_VTAB_VIRTUAL_TABLE_H_
