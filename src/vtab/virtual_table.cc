#include "vtab/virtual_table.h"

#include "common/strings.h"

namespace wsq {

Status VirtualTableRegistry::Register(
    std::unique_ptr<VirtualTable> table) {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), table->name())) {
      return Status::AlreadyExists("virtual table already registered: " +
                                   table->name());
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<VirtualTable*> VirtualTableRegistry::Get(
    const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return Status::NotFound("no such virtual table: " + name);
}

std::vector<std::string> VirtualTableRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

}  // namespace wsq
