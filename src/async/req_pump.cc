#include "async/req_pump.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace wsq {

namespace {

/// Records one resolved call's timings into the registry histograms.
/// Callers must NOT hold Core::mu: the registry lock order is
/// registry → component, so touching the registry under the pump lock
/// could deadlock against the pump's own collector.
/// `query_id` feeds the latency exemplars: completions land on pump or
/// service threads, so the thread-bound id is not available here.
void RecordCallTiming(const std::string& destination,
                      int64_t queue_wait_micros, int64_t in_flight_micros,
                      uint64_t query_id) {
  MetricsRegistry* registry = MetricsRegistry::Global();
  Histogram* latency = registry->GetHistogram(
      "wsq_external_call_latency_micros",
      "Dispatch-to-completion latency of external calls",
      {{"destination", destination}});
  if (latency != nullptr) {
    latency->RecordWithExemplar(in_flight_micros, query_id);
  }
  static Histogram* queue_wait = registry->GetHistogram(
      "wsq_reqpump_queue_wait_micros",
      "Time external calls waited for a ReqPump limit slot");
  if (queue_wait != nullptr) queue_wait->Record(queue_wait_micros);
}

}  // namespace

ReqPump::ReqPump(Limits limits)
    : core_(std::make_shared<Core>(limits)),
      timer_([core = core_] { TimerLoop(std::move(core)); }) {
  // Publish the pump's stats ledger (kept authoritative in Core::stats)
  // via a collector; several pumps merge into process-wide series.
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [core = core_](MetricsEmitter* emitter) {
        ReqPumpStats s;
        int in_flight;
        size_t queued;
        size_t pending;
        {
          MutexLock lock(&core->mu);
          s = core->stats;
          in_flight = core->in_flight_global;
          queued = core->queue.size();
          pending = core->results.size();
        }
        emitter->EmitCounter("wsq_reqpump_calls_registered_total",
                             "External calls registered", {}, s.registered);
        emitter->EmitCounter("wsq_reqpump_calls_dispatched_total",
                             "External calls handed to their dispatch fn",
                             {}, s.dispatched);
        emitter->EmitCounter("wsq_reqpump_calls_completed_total",
                             "External calls completed (incl. failures)",
                             {}, s.completed);
        emitter->EmitCounter("wsq_reqpump_calls_failed_total",
                             "External calls completed non-OK", {},
                             s.failed);
        emitter->EmitCounter("wsq_reqpump_calls_timed_out_total",
                             "External calls expired by the deadline timer",
                             {}, s.timed_out);
        emitter->EmitCounter("wsq_reqpump_calls_cancelled_total",
                             "External calls resolved kCancelled", {},
                             s.cancelled);
        emitter->EmitCounter("wsq_reqpump_calls_shed_total",
                             "External calls shed at Register (queue full)",
                             {}, s.shed);
        emitter->EmitCounter(
            "wsq_reqpump_late_completions_discarded_total",
            "Real completions discarded after timeout/cancel", {},
            s.late_discarded);
        emitter->EmitGauge("wsq_reqpump_in_flight",
                           "Currently dispatched external calls", {},
                           in_flight);
        emitter->EmitGauge("wsq_reqpump_queued",
                           "External calls waiting for a limit slot", {},
                           static_cast<int64_t>(queued));
        emitter->EmitGauge("wsq_reqpump_pending_results",
                           "Completed results not yet taken (ReqPumpHash)",
                           {}, static_cast<int64_t>(pending));
        emitter->EmitGauge("wsq_reqpump_max_in_flight",
                           "Peak concurrently dispatched calls", {},
                           static_cast<int64_t>(s.max_in_flight));
        emitter->EmitGauge("wsq_reqpump_queued_peak",
                           "Peak wait-queue length", {},
                           static_cast<int64_t>(s.queued_peak));
      });
}

ReqPump::~ReqPump() {
  // Unhook the collector before tearing anything down: after this, no
  // export can observe a half-destroyed pump.
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
  {
    MutexLock lock(&core_->mu);
    // Drop never-dispatched queued calls, then wait for in-flight ones.
    // Abandoned (timed-out) calls already released their slots and do
    // not delay shutdown; their stragglers hit the shared core later.
    for (const QueuedCall& q : core_->queue) {
      core_->results[q.id] =
          CallResult{Status::Cancelled("ReqPump shut down"), {}};
      core_->unresolved.erase(q.id);
      ++core_->stats.cancelled;
      --core_->outstanding;
    }
    core_->queue.clear();
    while (core_->in_flight_global != 0) core_->cv.Wait(core_->mu);
    core_->shutdown = true;
  }
  core_->cv.NotifyAll();
  timer_.join();
}

bool ReqPump::CanDispatchLocked(const Core& core,
                                const std::string& destination) {
  if (core.limits.max_global > 0 &&
      core.in_flight_global >= core.limits.max_global) {
    return false;
  }
  if (core.limits.max_per_destination > 0) {
    auto it = core.in_flight_by_dest.find(destination);
    if (it != core.in_flight_by_dest.end() &&
        it->second >= core.limits.max_per_destination) {
      return false;
    }
  }
  return true;
}

CallId ReqPump::Register(const std::string& destination, AsyncCallFn fn) {
  return Register(destination, std::move(fn),
                  core_->limits.default_timeout_micros);
}

CallId ReqPump::Register(const std::string& destination, AsyncCallFn fn,
                         int64_t timeout_micros) {
  CallId id;
  bool dispatch_now;
  bool has_deadline = timeout_micros > 0;
  const uint64_t query_id = CurrentQueryId();
  size_t queue_depth = 0;
  {
    MutexLock lock(&core_->mu);
    id = core_->next_id++;
    ++core_->stats.registered;
    dispatch_now = CanDispatchLocked(*core_, destination);
    if (!dispatch_now && core_->limits.max_queued > 0 &&
        static_cast<int>(core_->queue.size()) >=
            core_->limits.max_queued) {
      // Overload shedding: the wait queue is full, so this call is
      // resolved immediately instead of queued. Consumers see a normal
      // (failed) completion; nothing was dispatched, so no slot or
      // straggler accounting applies.
      ++core_->stats.shed;
      core_->results[id] = CallResult{
          Status::ResourceExhausted("ReqPump queue for '" + destination +
                                    "' is full (max_queued)"),
          {}};
      ++core_->completion_seq;
      core_->cv.NotifyAll();
      FlightRecorder::Global()->Record(FrEventType::kCallShed, destination,
                                       "queue_full", query_id,
                                       static_cast<int64_t>(id));
      return id;
    }
    ++core_->outstanding;
    int64_t now = NowMicros();
    core_->unresolved.emplace(
        id, CallMeta{destination, now, dispatch_now ? now : 0, query_id});
    int64_t deadline = has_deadline ? now + timeout_micros : 0;
    if (has_deadline) {
      core_->deadlines.push(Deadline{deadline, id, destination});
    }
    if (dispatch_now) {
      ++core_->stats.dispatched;
      ++core_->in_flight_global;
      ++core_->in_flight_by_dest[destination];
      core_->stats.max_in_flight =
          std::max(core_->stats.max_in_flight,
                   static_cast<uint64_t>(core_->in_flight_global));
    } else {
      core_->queue.push_back(
          QueuedCall{id, destination, std::move(fn), deadline, query_id});
      core_->stats.queued_peak =
          std::max(core_->stats.queued_peak,
                   static_cast<uint64_t>(core_->queue.size()));
      queue_depth = core_->queue.size();
    }
  }
  FlightRecorder::Global()->Record(FrEventType::kCallRegister, destination,
                                   dispatch_now ? "" : "queued", query_id,
                                   static_cast<int64_t>(id),
                                   static_cast<int64_t>(queue_depth));
  // Wake the timer so it re-arms for a possibly-earlier deadline.
  if (has_deadline) core_->cv.NotifyAll();
  if (dispatch_now) {
    Dispatch(core_, id, destination, std::move(fn), query_id);
  }
  return id;
}

void ReqPump::Dispatch(const std::shared_ptr<Core>& core, CallId id,
                       const std::string& destination, AsyncCallFn fn,
                       uint64_t query_id) {
  FlightRecorder::Global()->Record(FrEventType::kCallDispatch, destination,
                                   "", query_id, static_cast<int64_t>(id));
  // The completion may fire synchronously (e.g. a cache hit) or from a
  // service thread later; both paths go through OnComplete. The lambda
  // keeps the core alive so even a completion arriving after ~ReqPump
  // is safe.
  fn([core, id, destination](CallResult result) {
    OnComplete(core, id, destination, std::move(result));
  });
}

void ReqPump::OnComplete(const std::shared_ptr<Core>& core, CallId id,
                         const std::string& destination,
                         CallResult result) {
  std::vector<QueuedCall> to_dispatch;
  int64_t queue_wait_micros = 0;
  int64_t in_flight_micros = 0;
  bool record_timing = false;
  bool failed = false;
  std::string failure_code;
  uint64_t query_id = 0;
  {
    MutexLock lock(&core->mu);
    if (core->abandoned.erase(id) > 0) {
      // The deadline timer already completed this call and released its
      // slots; the real result arrives too late and is discarded.
      ++core->stats.late_discarded;
      lock.Unlock();
      FlightRecorder::Global()->Record(FrEventType::kCallLateDiscard,
                                       destination, "", /*query_id=*/0,
                                       static_cast<int64_t>(id));
      return;
    }
    auto meta = core->unresolved.find(id);
    if (meta != core->unresolved.end()) {
      query_id = meta->second.query_id;
      if (meta->second.dispatched_micros > 0) {
        queue_wait_micros =
            meta->second.dispatched_micros - meta->second.registered_micros;
        in_flight_micros = NowMicros() - meta->second.dispatched_micros;
        core->stats.queue_wait_micros_total += queue_wait_micros;
        core->stats.in_flight_micros_total += in_flight_micros;
        record_timing = true;
      }
    }
    if (!result.status.ok()) {
      ++core->stats.failed;
      failed = true;
      failure_code = StatusCodeToString(result.status.code());
    }
    ++core->stats.completed;
    result.queue_wait_micros = queue_wait_micros;
    result.in_flight_micros = in_flight_micros;
    core->results[id] = std::move(result);
    core->unresolved.erase(id);
    --core->in_flight_global;
    --core->in_flight_by_dest[destination];
    ++core->completion_seq;
    --core->outstanding;
    to_dispatch = TakeDispatchableLocked(core.get());
  }
  core->cv.NotifyAll();
  // Outside the lock (see RecordCallTiming).
  FlightRecorder::Global()->Record(
      failed ? FrEventType::kCallFailed : FrEventType::kCallComplete,
      destination, failure_code, query_id, static_cast<int64_t>(id),
      in_flight_micros);
  if (record_timing) {
    RecordCallTiming(destination, queue_wait_micros, in_flight_micros,
                     query_id);
  }
  for (QueuedCall& q : to_dispatch) {
    Dispatch(core, q.id, q.destination, std::move(q.fn), q.query_id);
  }
}

std::vector<ReqPump::QueuedCall> ReqPump::TakeDispatchableLocked(
    Core* core) {
  std::vector<QueuedCall> out;
  if (core->shutdown) return out;
  // FIFO per scan; a blocked head does not starve other destinations.
  for (auto it = core->queue.begin(); it != core->queue.end();) {
    // Account for calls already chosen in this scan.
    int pending_global = static_cast<int>(out.size());
    if (core->limits.max_global > 0 &&
        core->in_flight_global + pending_global >=
            core->limits.max_global) {
      break;
    }
    int pending_dest = 0;
    for (const QueuedCall& q : out) {
      if (q.destination == it->destination) ++pending_dest;
    }
    bool dest_ok = true;
    if (core->limits.max_per_destination > 0) {
      auto found = core->in_flight_by_dest.find(it->destination);
      int current =
          found == core->in_flight_by_dest.end() ? 0 : found->second;
      dest_ok = current + pending_dest < core->limits.max_per_destination;
    }
    if (dest_ok) {
      out.push_back(std::move(*it));
      it = core->queue.erase(it);
    } else {
      ++it;
    }
  }
  int64_t now = out.empty() ? 0 : NowMicros();
  for (const QueuedCall& q : out) {
    ++core->stats.dispatched;
    ++core->in_flight_global;
    ++core->in_flight_by_dest[q.destination];
    auto meta = core->unresolved.find(q.id);
    if (meta != core->unresolved.end()) {
      meta->second.dispatched_micros = now;
    }
  }
  core->stats.max_in_flight =
      std::max(core->stats.max_in_flight,
               static_cast<uint64_t>(core->in_flight_global));
  return out;
}

void ReqPump::TimerLoop(std::shared_ptr<Core> core) {
  MutexLock lock(&core->mu);
  while (!core->shutdown) {
    // Drop stale heap entries (calls that resolved before their
    // deadline) so they don't force pointless wakeups.
    while (!core->deadlines.empty() &&
           core->unresolved.count(core->deadlines.top().id) == 0) {
      core->deadlines.pop();
    }
    if (core->deadlines.empty()) {
      while (!core->shutdown && core->deadlines.empty()) {
        core->cv.Wait(core->mu);
      }
      continue;
    }
    int64_t now = NowMicros();
    int64_t when = core->deadlines.top().when_micros;
    if (now < when) {
      core->cv.WaitForMicros(core->mu, when - now);
      continue;
    }
    Deadline d = core->deadlines.top();
    core->deadlines.pop();
    auto meta = core->unresolved.find(d.id);
    if (meta == core->unresolved.end()) continue;

    // Time the call out: complete it with kDeadlineExceeded so blocked
    // consumers wake immediately.
    ++core->stats.timed_out;
    ++core->stats.failed;
    ++core->stats.completed;
    uint64_t query_id = meta->second.query_id;
    CallResult timeout_result{
        Status::DeadlineExceeded("external call to '" + d.destination +
                                 "' exceeded its deadline"),
        {}};
    if (meta->second.dispatched_micros > 0) {
      timeout_result.queue_wait_micros =
          meta->second.dispatched_micros - meta->second.registered_micros;
      timeout_result.in_flight_micros =
          now - meta->second.dispatched_micros;
      core->stats.queue_wait_micros_total +=
          timeout_result.queue_wait_micros;
      core->stats.in_flight_micros_total += timeout_result.in_flight_micros;
    }
    int64_t in_flight_micros = timeout_result.in_flight_micros;
    core->results[d.id] = std::move(timeout_result);
    core->unresolved.erase(meta);
    ++core->completion_seq;
    --core->outstanding;

    bool was_queued = false;
    for (auto it = core->queue.begin(); it != core->queue.end(); ++it) {
      if (it->id == d.id) {
        core->queue.erase(it);  // never dispatched: no straggler coming
        was_queued = true;
        break;
      }
    }
    std::vector<QueuedCall> to_dispatch;
    if (!was_queued) {
      // Dispatched: abandon it and free its limit slots so the queue
      // behind a hung destination keeps moving.
      core->abandoned.insert(d.id);
      --core->in_flight_global;
      --core->in_flight_by_dest[d.destination];
      to_dispatch = TakeDispatchableLocked(core.get());
    }
    lock.Unlock();
    FlightRecorder::Global()->Record(
        FrEventType::kCallTimeout, d.destination,
        was_queued ? "expired_in_queue" : "abandoned", query_id,
        static_cast<int64_t>(d.id), in_flight_micros);
    core->cv.NotifyAll();
    for (QueuedCall& q : to_dispatch) {
      Dispatch(core, q.id, q.destination, std::move(q.fn), q.query_id);
    }
    lock.Lock();
  }
}

bool ReqPump::CancelCall(CallId id) {
  std::vector<QueuedCall> to_dispatch;
  std::string cancelled_destination;
  uint64_t query_id = 0;
  {
    MutexLock lock(&core_->mu);
    auto meta = core_->unresolved.find(id);
    if (meta == core_->unresolved.end()) return false;
    std::string destination = meta->second.destination;
    cancelled_destination = destination;
    query_id = meta->second.query_id;
    CallResult cancel_result{Status::Cancelled("external call cancelled"),
                             {}};
    if (meta->second.dispatched_micros > 0) {
      int64_t now = NowMicros();
      cancel_result.queue_wait_micros =
          meta->second.dispatched_micros - meta->second.registered_micros;
      cancel_result.in_flight_micros =
          now - meta->second.dispatched_micros;
      core_->stats.queue_wait_micros_total +=
          cancel_result.queue_wait_micros;
      core_->stats.in_flight_micros_total +=
          cancel_result.in_flight_micros;
    }
    core_->unresolved.erase(meta);
    ++core_->stats.cancelled;
    core_->results[id] = std::move(cancel_result);
    ++core_->completion_seq;
    --core_->outstanding;

    bool was_queued = false;
    for (auto it = core_->queue.begin(); it != core_->queue.end(); ++it) {
      if (it->id == id) {
        core_->queue.erase(it);  // never dispatched: no straggler coming
        was_queued = true;
        break;
      }
    }
    if (!was_queued) {
      // Dispatched: abandon it — release its limit slots now, discard
      // its real completion when (if) it lands.
      core_->abandoned.insert(id);
      --core_->in_flight_global;
      --core_->in_flight_by_dest[destination];
      to_dispatch = TakeDispatchableLocked(core_.get());
    }
  }
  FlightRecorder::Global()->Record(FrEventType::kCallCancel,
                                   cancelled_destination, "", query_id,
                                   static_cast<int64_t>(id));
  core_->cv.NotifyAll();
  for (QueuedCall& q : to_dispatch) {
    Dispatch(core_, q.id, q.destination, std::move(q.fn), q.query_id);
  }
  return true;
}

bool ReqPump::IsComplete(CallId id) const {
  MutexLock lock(&core_->mu);
  return core_->results.count(id) > 0;
}

bool ReqPump::TryTake(CallId id, CallResult* out) {
  MutexLock lock(&core_->mu);
  auto it = core_->results.find(id);
  if (it == core_->results.end()) return false;
  *out = std::move(it->second);
  core_->results.erase(it);
  return true;
}

namespace {

/// How long a token-observing wait sleeps between token checks. The
/// token has no notification hook (see common/cancellation.h), so a
/// cross-thread Cancel() is noticed within one quantum — small enough
/// for prompt aborts, large enough that idle waiting stays cheap.
constexpr int64_t kCancelPollMicros = 5000;

}  // namespace

CallResult ReqPump::TakeBlocking(CallId id,
                                 const CancellationToken* token) {
  // Hold the core alive locally: a consumer woken by shutdown must be
  // able to finish this function even if ~ReqPump completes (and the
  // ReqPump object is freed) the moment it releases the lock.
  std::shared_ptr<Core> core = core_;
  MutexLock lock(&core->mu);
  while (true) {
    auto it = core->results.find(id);
    if (it != core->results.end()) {
      CallResult out = std::move(it->second);
      core->results.erase(it);
      return out;
    }
    // No result and no longer pending: the call is unknown or was
    // already taken — it will never complete, so waiting would hang.
    if (core->unresolved.count(id) == 0) {
      return CallResult{
          Status::Internal("TakeBlocking on an unknown or already-taken "
                           "call"),
          {}};
    }
    if (core->shutdown) {
      return CallResult{Status::Cancelled("ReqPump shut down"), {}};
    }
    if (token != nullptr) {
      Status alive = token->CheckAlive();
      if (!alive.ok()) return CallResult{alive, {}};
      core->cv.WaitForMicros(core->mu, kCancelPollMicros);
    } else {
      core->cv.Wait(core->mu);
    }
  }
}

uint64_t ReqPump::completion_seq() const {
  MutexLock lock(&core_->mu);
  return core_->completion_seq;
}

void ReqPump::WaitForCompletionBeyond(uint64_t seq,
                                      const CancellationToken* token) {
  std::shared_ptr<Core> core = core_;  // survive shutdown mid-wait
  MutexLock lock(&core->mu);
  while (core->completion_seq <= seq && !core->shutdown) {
    if (token != nullptr) {
      if (!token->CheckAlive().ok()) return;
      core->cv.WaitForMicros(core->mu, kCancelPollMicros);
    } else {
      core->cv.Wait(core->mu);
    }
  }
}

void ReqPump::Drain() {
  std::shared_ptr<Core> core = core_;  // survive shutdown mid-wait
  MutexLock lock(&core->mu);
  while (core->outstanding != 0 && !core->shutdown) {
    core->cv.Wait(core->mu);
  }
}

ReqPumpStats ReqPump::stats() const {
  MutexLock lock(&core_->mu);
  return core_->stats;
}

int ReqPump::in_flight() const {
  MutexLock lock(&core_->mu);
  return core_->in_flight_global;
}

size_t ReqPump::pending_results() const {
  MutexLock lock(&core_->mu);
  return core_->results.size();
}

std::vector<ReqPump::InFlightCall> ReqPump::InFlightCalls() const {
  std::vector<InFlightCall> out;
  int64_t now = NowMicros();
  {
    MutexLock lock(&core_->mu);
    for (const auto& [id, meta] : core_->unresolved) {
      if (meta.dispatched_micros <= 0) continue;  // still queued
      InFlightCall call;
      call.id = id;
      call.destination = meta.destination;
      call.query_id = meta.query_id;
      call.age_micros = now - meta.dispatched_micros;
      out.push_back(std::move(call));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const InFlightCall& a, const InFlightCall& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace wsq
