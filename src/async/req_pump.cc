#include "async/req_pump.h"

#include <algorithm>
#include <cassert>

namespace wsq {

ReqPump::ReqPump(Limits limits) : limits_(limits) {}

ReqPump::~ReqPump() {
  std::unique_lock<std::mutex> lock(mu_);
  // Drop never-dispatched queued calls, then wait for in-flight ones.
  for (const QueuedCall& q : queue_) {
    results_[q.id] =
        CallResult{Status::Cancelled("ReqPump shut down"), {}};
    --outstanding_;
  }
  queue_.clear();
  cv_.wait(lock, [this] { return in_flight_global_ == 0; });
}

bool ReqPump::CanDispatchLocked(const std::string& destination) const {
  if (limits_.max_global > 0 && in_flight_global_ >= limits_.max_global) {
    return false;
  }
  if (limits_.max_per_destination > 0) {
    auto it = in_flight_by_dest_.find(destination);
    if (it != in_flight_by_dest_.end() &&
        it->second >= limits_.max_per_destination) {
      return false;
    }
  }
  return true;
}

CallId ReqPump::Register(const std::string& destination, AsyncCallFn fn) {
  CallId id;
  bool dispatch_now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    ++stats_.registered;
    ++outstanding_;
    dispatch_now = CanDispatchLocked(destination);
    if (dispatch_now) {
      ++in_flight_global_;
      ++in_flight_by_dest_[destination];
      stats_.max_in_flight =
          std::max(stats_.max_in_flight,
                   static_cast<uint64_t>(in_flight_global_));
    } else {
      queue_.push_back(QueuedCall{id, destination, std::move(fn)});
      stats_.queued_peak =
          std::max(stats_.queued_peak,
                   static_cast<uint64_t>(queue_.size()));
    }
  }
  if (dispatch_now) {
    Dispatch(id, destination, std::move(fn));
  }
  return id;
}

void ReqPump::Dispatch(CallId id, const std::string& destination,
                       AsyncCallFn fn) {
  // The completion may fire synchronously (e.g. a cache hit) or from a
  // service thread later; both paths go through OnComplete.
  fn([this, id, destination](CallResult result) {
    OnComplete(id, destination, std::move(result));
  });
}

void ReqPump::OnComplete(CallId id, const std::string& destination,
                         CallResult result) {
  std::vector<QueuedCall> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!result.status.ok()) {
      ++stats_.failed;
    }
    ++stats_.completed;
    results_[id] = std::move(result);
    --in_flight_global_;
    --in_flight_by_dest_[destination];
    ++completion_seq_;
    --outstanding_;
    to_dispatch = CollectDispatchable();
    for (const QueuedCall& q : to_dispatch) {
      ++in_flight_global_;
      ++in_flight_by_dest_[q.destination];
    }
    stats_.max_in_flight =
        std::max(stats_.max_in_flight,
                 static_cast<uint64_t>(in_flight_global_));
  }
  cv_.notify_all();
  for (QueuedCall& q : to_dispatch) {
    Dispatch(q.id, q.destination, std::move(q.fn));
  }
}

std::vector<ReqPump::QueuedCall> ReqPump::CollectDispatchable() {
  std::vector<QueuedCall> out;
  // FIFO per scan; a blocked head does not starve other destinations.
  for (auto it = queue_.begin(); it != queue_.end();) {
    // Account for calls already chosen in this scan.
    int pending_global = static_cast<int>(out.size());
    if (limits_.max_global > 0 &&
        in_flight_global_ + pending_global >= limits_.max_global) {
      break;
    }
    int pending_dest = 0;
    for (const QueuedCall& q : out) {
      if (q.destination == it->destination) ++pending_dest;
    }
    bool dest_ok = true;
    if (limits_.max_per_destination > 0) {
      auto found = in_flight_by_dest_.find(it->destination);
      int current = found == in_flight_by_dest_.end() ? 0 : found->second;
      dest_ok = current + pending_dest < limits_.max_per_destination;
    }
    if (dest_ok) {
      out.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

bool ReqPump::IsComplete(CallId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.count(id) > 0;
}

bool ReqPump::TryTake(CallId id, CallResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(id);
  if (it == results_.end()) return false;
  *out = std::move(it->second);
  results_.erase(it);
  return true;
}

CallResult ReqPump::TakeBlocking(CallId id) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, id] { return results_.count(id) > 0; });
  CallResult out = std::move(results_[id]);
  results_.erase(id);
  return out;
}

uint64_t ReqPump::completion_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completion_seq_;
}

void ReqPump::WaitForCompletionBeyond(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, seq] { return completion_seq_ > seq; });
}

void ReqPump::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

ReqPumpStats ReqPump::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int ReqPump::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_global_;
}

}  // namespace wsq
