#include "async/req_pump.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"

namespace wsq {

ReqPump::ReqPump(Limits limits)
    : core_(std::make_shared<Core>(limits)),
      timer_([core = core_] { TimerLoop(std::move(core)); }) {}

ReqPump::~ReqPump() {
  {
    MutexLock lock(&core_->mu);
    // Drop never-dispatched queued calls, then wait for in-flight ones.
    // Abandoned (timed-out) calls already released their slots and do
    // not delay shutdown; their stragglers hit the shared core later.
    for (const QueuedCall& q : core_->queue) {
      core_->results[q.id] =
          CallResult{Status::Cancelled("ReqPump shut down"), {}};
      core_->unresolved.erase(q.id);
      --core_->outstanding;
    }
    core_->queue.clear();
    while (core_->in_flight_global != 0) core_->cv.Wait(core_->mu);
    core_->shutdown = true;
  }
  core_->cv.NotifyAll();
  timer_.join();
}

bool ReqPump::CanDispatchLocked(const Core& core,
                                const std::string& destination) {
  if (core.limits.max_global > 0 &&
      core.in_flight_global >= core.limits.max_global) {
    return false;
  }
  if (core.limits.max_per_destination > 0) {
    auto it = core.in_flight_by_dest.find(destination);
    if (it != core.in_flight_by_dest.end() &&
        it->second >= core.limits.max_per_destination) {
      return false;
    }
  }
  return true;
}

CallId ReqPump::Register(const std::string& destination, AsyncCallFn fn) {
  return Register(destination, std::move(fn),
                  core_->limits.default_timeout_micros);
}

CallId ReqPump::Register(const std::string& destination, AsyncCallFn fn,
                         int64_t timeout_micros) {
  CallId id;
  bool dispatch_now;
  bool has_deadline = timeout_micros > 0;
  {
    MutexLock lock(&core_->mu);
    id = core_->next_id++;
    ++core_->stats.registered;
    ++core_->outstanding;
    core_->unresolved.insert(id);
    int64_t deadline =
        has_deadline ? NowMicros() + timeout_micros : 0;
    if (has_deadline) {
      core_->deadlines.push(Deadline{deadline, id, destination});
    }
    dispatch_now = CanDispatchLocked(*core_, destination);
    if (dispatch_now) {
      ++core_->in_flight_global;
      ++core_->in_flight_by_dest[destination];
      core_->stats.max_in_flight =
          std::max(core_->stats.max_in_flight,
                   static_cast<uint64_t>(core_->in_flight_global));
    } else {
      core_->queue.push_back(
          QueuedCall{id, destination, std::move(fn), deadline});
      core_->stats.queued_peak =
          std::max(core_->stats.queued_peak,
                   static_cast<uint64_t>(core_->queue.size()));
    }
  }
  // Wake the timer so it re-arms for a possibly-earlier deadline.
  if (has_deadline) core_->cv.NotifyAll();
  if (dispatch_now) {
    Dispatch(core_, id, destination, std::move(fn));
  }
  return id;
}

void ReqPump::Dispatch(const std::shared_ptr<Core>& core, CallId id,
                       const std::string& destination, AsyncCallFn fn) {
  // The completion may fire synchronously (e.g. a cache hit) or from a
  // service thread later; both paths go through OnComplete. The lambda
  // keeps the core alive so even a completion arriving after ~ReqPump
  // is safe.
  fn([core, id, destination](CallResult result) {
    OnComplete(core, id, destination, std::move(result));
  });
}

void ReqPump::OnComplete(const std::shared_ptr<Core>& core, CallId id,
                         const std::string& destination,
                         CallResult result) {
  std::vector<QueuedCall> to_dispatch;
  {
    MutexLock lock(&core->mu);
    if (core->abandoned.erase(id) > 0) {
      // The deadline timer already completed this call and released its
      // slots; the real result arrives too late and is discarded.
      ++core->stats.late_discarded;
      return;
    }
    if (!result.status.ok()) {
      ++core->stats.failed;
    }
    ++core->stats.completed;
    core->results[id] = std::move(result);
    core->unresolved.erase(id);
    --core->in_flight_global;
    --core->in_flight_by_dest[destination];
    ++core->completion_seq;
    --core->outstanding;
    to_dispatch = TakeDispatchableLocked(core.get());
  }
  core->cv.NotifyAll();
  for (QueuedCall& q : to_dispatch) {
    Dispatch(core, q.id, q.destination, std::move(q.fn));
  }
}

std::vector<ReqPump::QueuedCall> ReqPump::TakeDispatchableLocked(
    Core* core) {
  std::vector<QueuedCall> out;
  if (core->shutdown) return out;
  // FIFO per scan; a blocked head does not starve other destinations.
  for (auto it = core->queue.begin(); it != core->queue.end();) {
    // Account for calls already chosen in this scan.
    int pending_global = static_cast<int>(out.size());
    if (core->limits.max_global > 0 &&
        core->in_flight_global + pending_global >=
            core->limits.max_global) {
      break;
    }
    int pending_dest = 0;
    for (const QueuedCall& q : out) {
      if (q.destination == it->destination) ++pending_dest;
    }
    bool dest_ok = true;
    if (core->limits.max_per_destination > 0) {
      auto found = core->in_flight_by_dest.find(it->destination);
      int current =
          found == core->in_flight_by_dest.end() ? 0 : found->second;
      dest_ok = current + pending_dest < core->limits.max_per_destination;
    }
    if (dest_ok) {
      out.push_back(std::move(*it));
      it = core->queue.erase(it);
    } else {
      ++it;
    }
  }
  for (const QueuedCall& q : out) {
    ++core->in_flight_global;
    ++core->in_flight_by_dest[q.destination];
  }
  core->stats.max_in_flight =
      std::max(core->stats.max_in_flight,
               static_cast<uint64_t>(core->in_flight_global));
  return out;
}

void ReqPump::TimerLoop(std::shared_ptr<Core> core) {
  MutexLock lock(&core->mu);
  while (!core->shutdown) {
    // Drop stale heap entries (calls that resolved before their
    // deadline) so they don't force pointless wakeups.
    while (!core->deadlines.empty() &&
           core->unresolved.count(core->deadlines.top().id) == 0) {
      core->deadlines.pop();
    }
    if (core->deadlines.empty()) {
      while (!core->shutdown && core->deadlines.empty()) {
        core->cv.Wait(core->mu);
      }
      continue;
    }
    int64_t now = NowMicros();
    int64_t when = core->deadlines.top().when_micros;
    if (now < when) {
      core->cv.WaitForMicros(core->mu, when - now);
      continue;
    }
    Deadline d = core->deadlines.top();
    core->deadlines.pop();
    if (core->unresolved.count(d.id) == 0) continue;

    // Time the call out: complete it with kDeadlineExceeded so blocked
    // consumers wake immediately.
    ++core->stats.timed_out;
    ++core->stats.failed;
    ++core->stats.completed;
    core->results[d.id] = CallResult{
        Status::DeadlineExceeded("external call to '" + d.destination +
                                 "' exceeded its deadline"),
        {}};
    core->unresolved.erase(d.id);
    ++core->completion_seq;
    --core->outstanding;

    bool was_queued = false;
    for (auto it = core->queue.begin(); it != core->queue.end(); ++it) {
      if (it->id == d.id) {
        core->queue.erase(it);  // never dispatched: no straggler coming
        was_queued = true;
        break;
      }
    }
    std::vector<QueuedCall> to_dispatch;
    if (!was_queued) {
      // Dispatched: abandon it and free its limit slots so the queue
      // behind a hung destination keeps moving.
      core->abandoned.insert(d.id);
      --core->in_flight_global;
      --core->in_flight_by_dest[d.destination];
      to_dispatch = TakeDispatchableLocked(core.get());
    }
    lock.Unlock();
    core->cv.NotifyAll();
    for (QueuedCall& q : to_dispatch) {
      Dispatch(core, q.id, q.destination, std::move(q.fn));
    }
    lock.Lock();
  }
}

bool ReqPump::IsComplete(CallId id) const {
  MutexLock lock(&core_->mu);
  return core_->results.count(id) > 0;
}

bool ReqPump::TryTake(CallId id, CallResult* out) {
  MutexLock lock(&core_->mu);
  auto it = core_->results.find(id);
  if (it == core_->results.end()) return false;
  *out = std::move(it->second);
  core_->results.erase(it);
  return true;
}

CallResult ReqPump::TakeBlocking(CallId id) {
  MutexLock lock(&core_->mu);
  while (core_->results.count(id) == 0) core_->cv.Wait(core_->mu);
  CallResult out = std::move(core_->results[id]);
  core_->results.erase(id);
  return out;
}

uint64_t ReqPump::completion_seq() const {
  MutexLock lock(&core_->mu);
  return core_->completion_seq;
}

void ReqPump::WaitForCompletionBeyond(uint64_t seq) {
  MutexLock lock(&core_->mu);
  while (core_->completion_seq <= seq) core_->cv.Wait(core_->mu);
}

void ReqPump::Drain() {
  MutexLock lock(&core_->mu);
  while (core_->outstanding != 0) core_->cv.Wait(core_->mu);
}

ReqPumpStats ReqPump::stats() const {
  MutexLock lock(&core_->mu);
  return core_->stats;
}

int ReqPump::in_flight() const {
  MutexLock lock(&core_->mu);
  return core_->in_flight_global;
}

size_t ReqPump::pending_results() const {
  MutexLock lock(&core_->mu);
  return core_->results.size();
}

}  // namespace wsq
