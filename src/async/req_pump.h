#ifndef WSQ_ASYNC_REQ_PUMP_H_
#define WSQ_ASYNC_REQ_PUMP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/row.h"
#include "types/value.h"

namespace wsq {

/// Outcome of one asynchronous external call: zero or more result rows
/// (a WebCount call yields exactly one; a WebPages call yields 0..k).
struct CallResult {
  Status status;
  std::vector<Row> rows;
  /// Timing attached by the ReqPump when it resolves the call: time the
  /// call waited for a limit slot, and time it spent dispatched. Both 0
  /// for calls resolved before dispatch (shed, cancelled in queue) and
  /// for results not produced by a ReqPump. Carried on the result so
  /// the consuming (query) thread can trace cross-thread work without
  /// touching pump internals.
  int64_t queue_wait_micros = 0;
  int64_t in_flight_micros = 0;
  /// Shards that failed to contribute to an OK-but-partial result
  /// (sharded backends under a degrading quorum policy); 0 for complete
  /// results and non-sharded services. Lets ReqSync surface degradation
  /// in QueryStats/EXPLAIN ANALYZE without a side channel.
  uint32_t degraded_shards = 0;
};

/// Completion sink handed to the call's dispatch function.
using CallCompletion = std::function<void(CallResult)>;

/// A self-dispatching asynchronous call: invoked once when ReqPump
/// grants it a slot; must eventually invoke the completion exactly once
/// (from any thread).
using AsyncCallFn = std::function<void(CallCompletion)>;

/// Observability counters (paper §4.1: resource monitoring).
struct ReqPumpStats {
  uint64_t registered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Calls completed with kDeadlineExceeded by the deadline timer.
  uint64_t timed_out = 0;
  /// Real completions that arrived after their call had already timed
  /// out and were discarded (never double-complete a call).
  uint64_t late_discarded = 0;
  /// Peak concurrently-dispatched calls (all destinations).
  uint64_t max_in_flight = 0;
  /// Peak length of the resource-limit wait queue.
  uint64_t queued_peak = 0;
  /// Calls resolved with kCancelled: queued calls dropped at
  /// destruction, or calls cancelled by a query governor (CancelCall).
  /// Not counted in `completed`/`failed`.
  uint64_t cancelled = 0;
  /// Calls rejected at Register because the wait queue was at
  /// Limits::max_queued (resolved kResourceExhausted immediately). Not
  /// counted in `completed`/`failed`.
  uint64_t shed = 0;
  /// Calls actually handed to their dispatch function (immediately at
  /// Register or later from the wait queue). Every dispatched call is
  /// eventually resolved exactly once, so at quiescence
  /// `dispatched <= registered` and
  /// `registered == completed + cancelled + shed`.
  uint64_t dispatched = 0;
  /// Sums of the per-call timings attached to CallResult, accumulated
  /// when a dispatched call resolves (completion, timeout, or cancel).
  /// `in_flight_micros_total / completed` approximates mean call
  /// latency; the full distribution lives in the
  /// `wsq_external_call_latency_micros` histogram.
  int64_t queue_wait_micros_total = 0;
  int64_t in_flight_micros_total = 0;
};

/// The paper's "Request Pump" (§4.1): a global module that issues
/// asynchronous external calls, stores their responses in a hash table
/// (ReqPumpHash) keyed by call id, signals consumers (ReqSync operators)
/// as calls complete, and enforces concurrency limits — one global
/// counter and one per destination, with a FIFO queue for calls that
/// exceed a limit.
///
/// Failure semantics: each call may carry a deadline (per call or from
/// Limits::default_timeout_micros). A dedicated timer thread completes
/// overdue calls with kDeadlineExceeded — whether they are still queued
/// or already dispatched — so consumers blocked in TakeBlocking never
/// wait past the deadline and a hung destination cannot wedge a query.
/// A dispatched call that times out is *abandoned*: its limit slots are
/// released immediately and its real completion, if one ever arrives,
/// is discarded. Shared internal state keeps such late completions safe
/// even after the ReqPump itself has been destroyed.
class ReqPump {
 public:
  struct Limits {
    /// Max concurrently-dispatched calls overall; 0 = unbounded.
    int max_global = 0;
    /// Max concurrently-dispatched calls per destination; 0 = unbounded.
    int max_per_destination = 0;
    /// Deadline applied to calls registered without an explicit timeout,
    /// measured from Register(); 0 = no deadline.
    int64_t default_timeout_micros = 0;
    /// Overload admission: max calls waiting for a limit slot. A
    /// Register that would queue past this bound is shed — resolved
    /// immediately with kResourceExhausted (stats.shed) instead of
    /// growing the queue without bound. 0 = unbounded.
    int max_queued = 0;
  };

  ReqPump() : ReqPump(Limits{}) {}
  explicit ReqPump(Limits limits);

  ReqPump(const ReqPump&) = delete;
  ReqPump& operator=(const ReqPump&) = delete;

  /// Blocks until all dispatched, non-abandoned calls complete; queued
  /// calls that were never dispatched are dropped (kCancelled). Calls
  /// that timed out do not delay destruction — their late completions
  /// land harmlessly in the shared core.
  ~ReqPump();

  /// Registers call `fn` against `destination` and returns immediately
  /// with its id, applying Limits::default_timeout_micros. The call is
  /// dispatched now if limits allow, else queued FIFO.
  CallId Register(const std::string& destination, AsyncCallFn fn);

  /// As above with an explicit per-call deadline; `timeout_micros` <= 0
  /// means no deadline (overriding any default).
  CallId Register(const std::string& destination, AsyncCallFn fn,
                  int64_t timeout_micros) WSQ_EXCLUDES(core_->mu);

  /// True once the call's result is available in ReqPumpHash.
  bool IsComplete(CallId id) const WSQ_EXCLUDES(core_->mu);

  /// Removes and returns the result if complete; nullopt otherwise.
  bool TryTake(CallId id, CallResult* out) WSQ_EXCLUDES(core_->mu);

  /// Blocks until call `id` completes, then removes and returns it.
  /// With a deadline set, returns at most ~timeout after registration.
  /// Never hangs forever: a call that can no longer complete (unknown
  /// id, result already taken) returns kInternal, and a pump shutting
  /// down mid-wait returns kCancelled.
  CallResult TakeBlocking(CallId id) WSQ_EXCLUDES(core_->mu) {
    return TakeBlocking(id, nullptr);
  }

  /// As above, observing `token` (may be null): returns the token's
  /// error without consuming the call once the query is cancelled or
  /// past its deadline. The call stays registered — cancel and reap it
  /// via CancelCall + TryTake (the ReqSync Close cascade does this).
  CallResult TakeBlocking(CallId id, const CancellationToken* token)
      WSQ_EXCLUDES(core_->mu);

  /// Resolves a not-yet-completed call with kCancelled: a queued call
  /// is dropped (its fn never runs), a dispatched call is abandoned —
  /// its limit slots are released now and its real completion, if one
  /// ever arrives, is discarded (stats.late_discarded). The kCancelled
  /// result is left in ReqPumpHash for the consumer to take. Returns
  /// false (and does nothing) if the call already has a result or is
  /// unknown. Safe from any thread.
  bool CancelCall(CallId id) WSQ_EXCLUDES(core_->mu);

  /// Monotonic count of completions; use with WaitForCompletionBeyond
  /// to sleep until any call finishes.
  uint64_t completion_seq() const WSQ_EXCLUDES(core_->mu);

  /// Blocks until completion_seq() > `seq` (returns immediately if it
  /// already is). With a token, also returns — without waiting for a
  /// completion — once the query is cancelled/expired or the pump shuts
  /// down; the caller re-checks its own predicate either way.
  void WaitForCompletionBeyond(uint64_t seq) WSQ_EXCLUDES(core_->mu) {
    WaitForCompletionBeyond(seq, nullptr);
  }
  void WaitForCompletionBeyond(uint64_t seq,
                               const CancellationToken* token)
      WSQ_EXCLUDES(core_->mu);

  /// Blocks until every registered call has completed (benches).
  void Drain() WSQ_EXCLUDES(core_->mu);

  ReqPumpStats stats() const WSQ_EXCLUDES(core_->mu);
  const Limits& limits() const { return core_->limits; }

  /// Currently dispatched (in-flight) calls, excluding abandoned ones.
  int in_flight() const WSQ_EXCLUDES(core_->mu);

  /// One live dispatched call, as reported by InFlightCalls (statusz:
  /// "which calls are out right now, how old are they, for whom").
  struct InFlightCall {
    CallId id = 0;
    std::string destination;
    uint64_t query_id = 0;
    /// Time since dispatch.
    int64_t age_micros = 0;
  };

  /// Snapshot of currently dispatched, non-abandoned calls, ordered by
  /// call id (registration order).
  std::vector<InFlightCall> InFlightCalls() const WSQ_EXCLUDES(core_->mu);

  /// Completed results sitting in ReqPumpHash, not yet taken. Should
  /// return to its pre-query value after a query closes — a growing
  /// number across queries means leaked entries.
  size_t pending_results() const WSQ_EXCLUDES(core_->mu);

 private:
  struct QueuedCall {
    CallId id;
    std::string destination;
    AsyncCallFn fn;
    /// Absolute deadline (micros, steady clock); 0 = none. Carried so
    /// the deadline keeps ticking while the call waits for a slot.
    int64_t deadline_micros = 0;
    /// Query the registering thread was bound to (flight recorder).
    uint64_t query_id = 0;
  };

  /// Per-unresolved-call bookkeeping (see Core::unresolved).
  struct CallMeta {
    std::string destination;
    int64_t registered_micros = 0;
    /// 0 while the call waits in the queue; set when it is dispatched.
    int64_t dispatched_micros = 0;
    /// Query the registering thread was bound to; stamps completion
    /// events and latency exemplars, which resolve on pump/service
    /// threads with no binding of their own.
    uint64_t query_id = 0;
  };

  struct Deadline {
    int64_t when_micros;
    CallId id;
    std::string destination;

    bool operator>(const Deadline& o) const {
      if (when_micros != o.when_micros) return when_micros > o.when_micros;
      return id > o.id;
    }
  };

  /// All mutable state lives here, shared (via shared_ptr) with every
  /// in-flight completion callback, so a straggler completing after the
  /// ReqPump is gone touches valid memory and is simply discarded.
  /// Every mutable field is guarded by `mu` — ReqPump has exactly one
  /// lock, so there is no internal ordering to get wrong.
  struct Core {
    explicit Core(Limits l) : limits(l) {}

    const Limits limits;

    mutable Mutex mu;
    CondVar cv;
    CallId next_id WSQ_GUARDED_BY(mu) = 1;
    uint64_t completion_seq WSQ_GUARDED_BY(mu) = 0;
    int in_flight_global WSQ_GUARDED_BY(mu) = 0;
    std::map<std::string, int> in_flight_by_dest WSQ_GUARDED_BY(mu);
    std::deque<QueuedCall> queue WSQ_GUARDED_BY(mu);
    /// "ReqPumpHash"
    std::unordered_map<CallId, CallResult> results WSQ_GUARDED_BY(mu);
    /// Registered calls with no result yet (not completed, timed out,
    /// or cancelled), with the metadata needed to resolve them: the
    /// destination (so CancelCall releases the right per-destination
    /// slot) and registration/dispatch timestamps for queue-wait and
    /// in-flight timing. Timer entries for ids outside this map are
    /// stale.
    std::unordered_map<CallId, CallMeta> unresolved WSQ_GUARDED_BY(mu);
    /// Dispatched calls that timed out: their eventual real completion
    /// must be discarded without touching counters or results.
    std::unordered_set<CallId> abandoned WSQ_GUARDED_BY(mu);
    std::priority_queue<Deadline, std::vector<Deadline>,
                        std::greater<Deadline>>
        deadlines WSQ_GUARDED_BY(mu);
    /// Registered but not yet resolved/dropped.
    uint64_t outstanding WSQ_GUARDED_BY(mu) = 0;
    bool shutdown WSQ_GUARDED_BY(mu) = false;
    ReqPumpStats stats WSQ_GUARDED_BY(mu);
  };

  /// Dispatches `fn` for call `id`; caller must NOT hold core->mu (the
  /// call may complete synchronously and re-enter OnComplete).
  /// `query_id` stamps the flight-recorder dispatch event (queued calls
  /// dispatch from pump threads where no binding exists).
  static void Dispatch(const std::shared_ptr<Core>& core, CallId id,
                       const std::string& destination, AsyncCallFn fn,
                       uint64_t query_id) WSQ_EXCLUDES(core->mu);

  /// Invoked by call completions (possibly after ~ReqPump).
  static void OnComplete(const std::shared_ptr<Core>& core, CallId id,
                         const std::string& destination,
                         CallResult result) WSQ_EXCLUDES(core->mu);

  /// Pops dispatchable queued calls under core->mu and reserves their
  /// limit slots; returns them for dispatch outside the lock.
  static std::vector<QueuedCall> TakeDispatchableLocked(Core* core)
      WSQ_REQUIRES(core->mu);

  static bool CanDispatchLocked(const Core& core,
                                const std::string& destination)
      WSQ_REQUIRES(core.mu);

  /// Deadline-timer thread body.
  static void TimerLoop(std::shared_ptr<Core> core);

  std::shared_ptr<Core> core_;
  std::thread timer_;
  /// MetricsRegistry collector handle (removed first in ~ReqPump so the
  /// callback never outlives the pump's registration).
  uint64_t collector_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_ASYNC_REQ_PUMP_H_
