#ifndef WSQ_ASYNC_REQ_PUMP_H_
#define WSQ_ASYNC_REQ_PUMP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/row.h"
#include "types/value.h"

namespace wsq {

/// Outcome of one asynchronous external call: zero or more result rows
/// (a WebCount call yields exactly one; a WebPages call yields 0..k).
struct CallResult {
  Status status;
  std::vector<Row> rows;
};

/// Completion sink handed to the call's dispatch function.
using CallCompletion = std::function<void(CallResult)>;

/// A self-dispatching asynchronous call: invoked once when ReqPump
/// grants it a slot; must eventually invoke the completion exactly once
/// (from any thread).
using AsyncCallFn = std::function<void(CallCompletion)>;

/// Observability counters (paper §4.1: resource monitoring).
struct ReqPumpStats {
  uint64_t registered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Peak concurrently-dispatched calls (all destinations).
  uint64_t max_in_flight = 0;
  /// Peak length of the resource-limit wait queue.
  uint64_t queued_peak = 0;
};

/// The paper's "Request Pump" (§4.1): a global module that issues
/// asynchronous external calls, stores their responses in a hash table
/// (ReqPumpHash) keyed by call id, signals consumers (ReqSync operators)
/// as calls complete, and enforces concurrency limits — one global
/// counter and one per destination, with a FIFO queue for calls that
/// exceed a limit.
class ReqPump {
 public:
  struct Limits {
    /// Max concurrently-dispatched calls overall; 0 = unbounded.
    int max_global = 0;
    /// Max concurrently-dispatched calls per destination; 0 = unbounded.
    int max_per_destination = 0;
  };

  ReqPump() : ReqPump(Limits{0, 0}) {}
  explicit ReqPump(Limits limits);

  ReqPump(const ReqPump&) = delete;
  ReqPump& operator=(const ReqPump&) = delete;

  /// Blocks until all dispatched calls complete; queued calls that were
  /// never dispatched are dropped.
  ~ReqPump();

  /// Registers call `fn` against `destination` and returns immediately
  /// with its id. The call is dispatched now if limits allow, else
  /// queued FIFO.
  CallId Register(const std::string& destination, AsyncCallFn fn);

  /// True once the call's result is available in ReqPumpHash.
  bool IsComplete(CallId id) const;

  /// Removes and returns the result if complete; nullopt otherwise.
  bool TryTake(CallId id, CallResult* out);

  /// Blocks until call `id` completes, then removes and returns it.
  CallResult TakeBlocking(CallId id);

  /// Monotonic count of completions; use with WaitForCompletionBeyond
  /// to sleep until any call finishes.
  uint64_t completion_seq() const;

  /// Blocks until completion_seq() > `seq` (returns immediately if it
  /// already is).
  void WaitForCompletionBeyond(uint64_t seq);

  /// Blocks until every registered call has completed (benches).
  void Drain();

  ReqPumpStats stats() const;
  const Limits& limits() const { return limits_; }

  /// Currently dispatched (in-flight) calls.
  int in_flight() const;

 private:
  struct QueuedCall {
    CallId id;
    std::string destination;
    AsyncCallFn fn;
  };

  /// Dispatches `fn` for call `id`; caller must NOT hold mu_.
  void Dispatch(CallId id, const std::string& destination, AsyncCallFn fn);

  /// Invoked by call completions.
  void OnComplete(CallId id, const std::string& destination,
                  CallResult result);

  /// Pops dispatchable queued calls under mu_; returns them for
  /// dispatch outside the lock.
  std::vector<QueuedCall> CollectDispatchable();

  bool CanDispatchLocked(const std::string& destination) const;

  Limits limits_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  CallId next_id_ = 1;
  uint64_t completion_seq_ = 0;
  int in_flight_global_ = 0;
  std::map<std::string, int> in_flight_by_dest_;
  std::deque<QueuedCall> queue_;
  std::unordered_map<CallId, CallResult> results_;  // "ReqPumpHash"
  uint64_t outstanding_ = 0;  // registered but not yet completed/dropped
  ReqPumpStats stats_;
};

}  // namespace wsq

#endif  // WSQ_ASYNC_REQ_PUMP_H_
