#include "plan/async_rewriter.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace wsq {

namespace {

bool ExprReferencesAny(const BoundExpr& expr,
                       const std::vector<size_t>& columns) {
  std::vector<size_t> refs;
  expr.CollectColumns(&refs);
  for (size_t r : refs) {
    if (std::find(columns.begin(), columns.end(), r) != columns.end()) {
      return true;
    }
  }
  return false;
}

std::vector<size_t> OffsetColumns(const std::vector<size_t>& columns,
                                  size_t offset) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (size_t c : columns) out.push_back(c + offset);
  return out;
}

/// For a Project above a ReqSync with attribute set A (child coords):
/// returns the output positions of A if every use of an A-column is a
/// bare column reference and none is dropped; nullopt on clash.
std::optional<std::vector<size_t>> MapThroughProject(
    const ProjectNode& project, const std::vector<size_t>& a) {
  std::set<size_t> a_set(a.begin(), a.end());
  std::set<size_t> preserved;
  std::vector<size_t> out;
  for (size_t j = 0; j < project.exprs().size(); ++j) {
    const BoundExpr& e = *project.exprs()[j];
    if (e.kind() == BoundExpr::Kind::kColumnRef) {
      size_t idx = static_cast<const BoundColumnRef&>(e).index();
      if (a_set.count(idx) > 0) {
        preserved.insert(idx);
        out.push_back(j);
      }
      continue;
    }
    // Computed expression: must not touch A (clash case 1).
    if (ExprReferencesAny(e, a)) return std::nullopt;
  }
  // Dropping an A column breaks cancellation/proliferation (case 2).
  if (preserved.size() != a_set.size()) return std::nullopt;
  return out;
}

/// Insertion (§4.5.1): converts every EVScan to an AEVScan and places a
/// ReqSync at the lowest *executable* position above it: directly above
/// the scan for a leaf, or above the enclosing dependent join / cross
/// product when the scan is a join's right child (a dependent join must
/// keep its scan as the immediate right child so it can rebind it).
void InsertReqSyncs(PlanNodePtr* slot) {
  PlanNode* node = slot->get();

  if (node->kind() == PlanNode::Kind::kEVScan) {
    auto* scan = static_cast<EVScanNode*>(node);
    scan->async = true;
    std::vector<size_t> patched = scan->OutputColumnIndices();
    *slot = std::make_unique<ReqSyncNode>(std::move(*slot),
                                          std::move(patched));
    return;
  }

  bool joins_scan_right =
      (node->kind() == PlanNode::Kind::kDependentJoin ||
       node->kind() == PlanNode::Kind::kCrossProduct) &&
      node->num_children() == 2 &&
      node->child(1)->kind() == PlanNode::Kind::kEVScan;

  if (joins_scan_right) {
    InsertReqSyncs(&node->children()[0]);
    auto* scan = static_cast<EVScanNode*>(node->child(1));
    scan->async = true;
    size_t left_width = node->child(0)->schema().NumColumns();
    std::vector<size_t> patched =
        OffsetColumns(scan->OutputColumnIndices(), left_width);
    *slot = std::make_unique<ReqSyncNode>(std::move(*slot),
                                          std::move(patched));
    return;
  }

  for (auto& child : node->children()) {
    InsertReqSyncs(&child);
  }
}

/// Can a clashing Filter `f` (child slot `cf` of `g`) be hoisted above
/// `g`? If so fills `remap` with the column mapping for f's predicate
/// (old index → new index; identity when empty).
bool CanHoistFilter(const PlanNode& g, size_t cf,
                    const FilterNode& f, std::vector<int>* remap) {
  remap->clear();
  switch (g.kind()) {
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kDistinct:
      // σ commutes with σ and with duplicate elimination.
      return true;
    case PlanNode::Kind::kNestedLoopJoin:
    case PlanNode::Kind::kCrossProduct:
    case PlanNode::Kind::kDependentJoin: {
      if (cf == 0) return true;  // left columns keep their indices
      size_t left_width = g.child(0)->schema().NumColumns();
      size_t in_width = f.schema().NumColumns();
      remap->assign(in_width, -1);
      for (size_t i = 0; i < in_width; ++i) {
        (*remap)[i] = static_cast<int>(i + left_width);
      }
      return true;
    }
    case PlanNode::Kind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(g);
      std::vector<size_t> used;
      f.predicate().CollectColumns(&used);
      size_t in_width = f.schema().NumColumns();
      remap->assign(in_width, -1);
      for (size_t j = 0; j < project.exprs().size(); ++j) {
        const BoundExpr& e = *project.exprs()[j];
        if (e.kind() == BoundExpr::Kind::kColumnRef) {
          size_t idx = static_cast<const BoundColumnRef&>(e).index();
          if (idx < in_width && (*remap)[idx] < 0) {
            (*remap)[idx] = static_cast<int>(j);
          }
        }
      }
      for (size_t u : used) {
        if (u >= in_width || (*remap)[u] < 0) return false;
      }
      return true;
    }
    default:
      // Sort (order), Limit (cardinality), Aggregate (grouping) do not
      // commute with a selection hoist.
      return false;
  }
}

/// One rewrite step anywhere in the tree; returns true if it changed.
bool TryRewriteOnce(PlanNodePtr* slot, const RewriteOptions& options,
                    Status* error) {
  PlanNode* node = slot->get();

  // Pattern 1: this node has a ReqSync child — try to pull it above us.
  for (size_t ci = 0; ci < node->num_children(); ++ci) {
    if (node->child(ci)->kind() != PlanNode::Kind::kReqSync) continue;
    if (node->kind() == PlanNode::Kind::kReqSync) break;  // consolidation
    auto* rs = static_cast<ReqSyncNode*>(node->child(ci));
    const std::vector<size_t>& a = rs->patched_columns();

    // Attribute set in this node's coordinate space.
    size_t left_width =
        ci == 1 ? node->child(0)->schema().NumColumns() : 0;
    std::vector<size_t> a_here = OffsetColumns(a, left_width);

    bool clash = false;
    bool join_pred_clash = false;
    std::vector<size_t> a_after;  // A in this node's output coords

    switch (node->kind()) {
      case PlanNode::Kind::kFilter: {
        const auto& f = static_cast<const FilterNode&>(*node);
        clash = ExprReferencesAny(f.predicate(), a_here);
        a_after = a_here;
        break;
      }
      case PlanNode::Kind::kProject: {
        const auto& p = static_cast<const ProjectNode&>(*node);
        auto mapped = MapThroughProject(p, a_here);
        clash = !mapped.has_value();
        if (!clash) a_after = std::move(*mapped);
        break;
      }
      case PlanNode::Kind::kNestedLoopJoin: {
        const auto& j = static_cast<const NestedLoopJoinNode&>(*node);
        if (ExprReferencesAny(j.predicate(), a_here)) {
          clash = true;
          join_pred_clash = true;
        }
        a_after = a_here;
        break;
      }
      case PlanNode::Kind::kCrossProduct:
        a_after = a_here;
        break;
      case PlanNode::Kind::kDependentJoin: {
        const auto& dj = static_cast<const DependentJoinNode&>(*node);
        if (ci == 0) {
          for (const auto& b : dj.bindings()) {
            if (std::find(a.begin(), a.end(), b.left_column) !=
                a.end()) {
              clash = true;  // the join depends on a pending value
            }
          }
        }
        a_after = a_here;
        break;
      }
      case PlanNode::Kind::kSort:
        // ReqSync emits in completion order; pulling it above a Sort
        // would destroy the ordering even when the keys are complete.
        clash = true;
        break;
      case PlanNode::Kind::kDistinct:
      case PlanNode::Kind::kAggregate:
      case PlanNode::Kind::kLimit:
        clash = true;  // §4.5.2 case 3 (tuple-count sensitivity)
        break;
      default:
        clash = true;
        break;
    }

    if (!clash) {
      // Swap: ReqSync moves above this node.
      PlanNodePtr rs_owned = std::move(node->children()[ci]);
      auto* rs_node = static_cast<ReqSyncNode*>(rs_owned.get());
      node->children()[ci] = std::move(rs_node->children()[0]);
      rs_node->children()[0] = std::move(*slot);
      *rs_node->mutable_schema() = rs_node->child(0)->schema();
      *rs_node->mutable_patched_columns() = std::move(a_after);
      *slot = std::move(rs_owned);
      return true;
    }

    if (join_pred_clash && options.rewrite_clashing_joins) {
      // join(p) → σ_p(×) (§4.5.2); column indices are unchanged.
      auto* join = static_cast<NestedLoopJoinNode*>(node);
      BoundExprPtr pred = join->TakePredicate();
      auto cross = std::make_unique<CrossProductNode>(
          std::move(join->children()[0]), std::move(join->children()[1]));
      *slot = std::make_unique<FilterNode>(std::move(cross),
                                           std::move(pred));
      return true;
    }
  }

  // Pattern 2: grandparent view — a clashing Filter sitting on a
  // ReqSync is hoisted above this node so the ReqSync can continue.
  for (size_t cf = 0; cf < node->num_children(); ++cf) {
    if (node->child(cf)->kind() != PlanNode::Kind::kFilter) continue;
    auto* filter = static_cast<FilterNode*>(node->child(cf));
    if (filter->child(0)->kind() != PlanNode::Kind::kReqSync) continue;
    auto* rs = static_cast<ReqSyncNode*>(filter->child(0));
    if (!ExprReferencesAny(filter->predicate(),
                           rs->patched_columns())) {
      continue;  // not clashing; pattern 1 will move the ReqSync
    }
    // If this node is itself a filter clashing with the same ReqSync,
    // both filters belong above it — hoisting between them would cycle.
    if (node->kind() == PlanNode::Kind::kFilter &&
        ExprReferencesAny(
            static_cast<const FilterNode*>(node)->predicate(),
            rs->patched_columns())) {
      continue;
    }
    std::vector<int> remap;
    if (!CanHoistFilter(*node, cf, *filter, &remap)) continue;

    PlanNodePtr f_owned = std::move(node->children()[cf]);
    auto* f = static_cast<FilterNode*>(f_owned.get());
    node->children()[cf] = std::move(f->children()[0]);
    if (!remap.empty()) {
      Status s = f->mutable_predicate()->RemapColumns(remap);
      if (!s.ok()) {
        *error = s;
        return false;
      }
    }
    f->children()[0] = std::move(*slot);
    *f->mutable_schema() = f->child(0)->schema();
    *slot = std::move(f_owned);
    return true;
  }

  // Recurse.
  for (auto& child : node->children()) {
    if (TryRewriteOnce(&child, options, error)) return true;
    if (!error->ok()) return false;
  }
  return false;
}

/// Consolidation (§4.5.3): merge directly-adjacent ReqSyncs.
bool ConsolidateOnce(PlanNodePtr* slot) {
  PlanNode* node = slot->get();
  if (node->kind() == PlanNode::Kind::kReqSync &&
      node->child(0)->kind() == PlanNode::Kind::kReqSync) {
    auto* upper = static_cast<ReqSyncNode*>(node);
    auto* lower = static_cast<ReqSyncNode*>(node->child(0));
    std::set<size_t> merged(upper->patched_columns().begin(),
                            upper->patched_columns().end());
    merged.insert(lower->patched_columns().begin(),
                  lower->patched_columns().end());
    *upper->mutable_patched_columns() =
        std::vector<size_t>(merged.begin(), merged.end());
    upper->children()[0] = std::move(lower->children()[0]);
    return true;
  }
  for (auto& child : node->children()) {
    if (ConsolidateOnce(&child)) return true;
  }
  return false;
}

}  // namespace

size_t CountReqSyncs(const PlanNode& plan) {
  size_t n = plan.kind() == PlanNode::Kind::kReqSync ? 1 : 0;
  for (const auto& child : plan.children()) {
    n += CountReqSyncs(*child);
  }
  return n;
}

size_t CountAsyncScans(const PlanNode& plan) {
  size_t n = 0;
  if (plan.kind() == PlanNode::Kind::kEVScan &&
      static_cast<const EVScanNode&>(plan).async) {
    n = 1;
  }
  for (const auto& child : plan.children()) {
    n += CountAsyncScans(*child);
  }
  return n;
}

namespace {
void SetStreaming(PlanNode* node) {
  if (node->kind() == PlanNode::Kind::kReqSync) {
    static_cast<ReqSyncNode*>(node)->streaming = true;
  }
  for (auto& child : node->children()) SetStreaming(child.get());
}

void SetOnCallError(PlanNode* node, OnCallError policy) {
  if (node->kind() == PlanNode::Kind::kReqSync) {
    static_cast<ReqSyncNode*>(node)->on_call_error = policy;
  }
  for (auto& child : node->children()) {
    SetOnCallError(child.get(), policy);
  }
}

void SetBufferBudget(PlanNode* node, const RewriteOptions& options) {
  if (node->kind() == PlanNode::Kind::kReqSync) {
    auto* sync = static_cast<ReqSyncNode*>(node);
    sync->max_buffered_rows = options.max_buffered_rows;
    sync->max_buffered_bytes = options.max_buffered_bytes;
    sync->shed_oldest = options.shed_oldest;
  }
  for (auto& child : node->children()) {
    SetBufferBudget(child.get(), options);
  }
}
}  // namespace

Result<PlanNodePtr> ApplyAsyncIteration(PlanNodePtr plan,
                                        RewriteOptions options) {
  InsertReqSyncs(&plan);

  if (!options.insert_only) {
    Status error;
    while (TryRewriteOnce(&plan, options, &error)) {
    }
    WSQ_RETURN_IF_ERROR(error);
  }

  if (options.consolidate) {
    while (ConsolidateOnce(&plan)) {
    }
  }
  if (options.streaming_reqsync) {
    SetStreaming(plan.get());
  }
  if (options.on_call_error != OnCallError::kFailQuery) {
    SetOnCallError(plan.get(), options.on_call_error);
  }
  if (options.max_buffered_rows > 0 || options.max_buffered_bytes > 0) {
    SetBufferBudget(plan.get(), options);
  }
  return plan;
}

}  // namespace wsq
