#include "plan/binder.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

void CollectConjuncts(const ParsedExpr& expr,
                      std::vector<const ParsedExpr*>* out) {
  if (expr.kind() == ParsedExpr::Kind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(expr);
    if (bin.op() == BinaryOp::kAnd) {
      CollectConjuncts(bin.left(), out);
      CollectConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(&expr);
}

size_t ParseTermIndex(const std::string& name) {
  if (name.size() != 2) return 0;
  if (name[0] != 'T' && name[0] != 't') return 0;
  if (name[1] < '1' || name[1] > '9') return 0;
  return static_cast<size_t>(name[1] - '0');
}

namespace {

/// Recursively collects every column reference in `expr`.
void CollectColumnRefs(const ParsedExpr& expr,
                       std::vector<const ColumnRefExpr*>* out) {
  switch (expr.kind()) {
    case ParsedExpr::Kind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&expr));
      return;
    case ParsedExpr::Kind::kUnary:
      CollectColumnRefs(static_cast<const UnaryExpr&>(expr).operand(),
                        out);
      return;
    case ParsedExpr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectColumnRefs(bin.left(), out);
      CollectColumnRefs(bin.right(), out);
      return;
    }
    case ParsedExpr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FuncExpr&>(expr);
      for (const auto& a : f.args()) CollectColumnRefs(*a, out);
      return;
    }
    default:
      return;
  }
}

/// Collects aggregate function calls (no recursion into their args);
/// scalar functions (UPPER, ...) are transparent.
void CollectAggCalls(const ParsedExpr& expr,
                     std::vector<const FuncExpr*>* out) {
  switch (expr.kind()) {
    case ParsedExpr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FuncExpr&>(expr);
      ScalarFunc scalar;
      if (LookupScalarFunc(f.name(), &scalar)) {
        for (const auto& a : f.args()) CollectAggCalls(*a, out);
        return;
      }
      out->push_back(&f);
      return;
    }
    case ParsedExpr::Kind::kUnary:
      CollectAggCalls(static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ParsedExpr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectAggCalls(bin.left(), out);
      CollectAggCalls(bin.right(), out);
      return;
    }
    default:
      return;
  }
}

/// Every scalar expression in the statement, for ref analysis.
template <typename Fn>
void ForEachStatementExpr(const SelectStatement& stmt, Fn fn) {
  for (const SelectItem& item : stmt.select_list) fn(*item.expr);
  if (stmt.where != nullptr) fn(*stmt.where);
  for (const auto& g : stmt.group_by) fn(*g);
  if (stmt.having != nullptr) fn(*stmt.having);
  for (const auto& o : stmt.order_by) fn(*o.expr);
}

BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;
  }
}

}  // namespace

Binder::Binder(const Catalog* catalog, const VirtualTableRegistry* vtables,
               BinderOptions options)
    : catalog_(catalog), vtables_(vtables), options_(options) {}

Result<BoundExprPtr> Binder::BindScalar(const ParsedExpr& expr,
                                        const Schema& schema) {
  switch (expr.kind()) {
    case ParsedExpr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      WSQ_ASSIGN_OR_RETURN(size_t idx,
                           schema.Find(ref.qualifier(), ref.name()));
      return BoundExprPtr(
          std::make_unique<BoundColumnRef>(idx, schema.column(idx)));
    }
    case ParsedExpr::Kind::kLiteral:
      return BoundExprPtr(std::make_unique<BoundLiteral>(
          static_cast<const LiteralExpr&>(expr).value()));
    case ParsedExpr::Kind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindScalar(u.operand(), schema));
      return BoundExprPtr(
          std::make_unique<BoundUnary>(u.op(), std::move(operand)));
    }
    case ParsedExpr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr left, BindScalar(b.left(), schema));
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr right,
                           BindScalar(b.right(), schema));
      return BoundExprPtr(std::make_unique<BoundBinary>(
          b.op(), std::move(left), std::move(right)));
    }
    case ParsedExpr::Kind::kStar:
      return Status::BindError("'*' is not valid in this context");
    case ParsedExpr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FuncExpr&>(expr);
      ScalarFunc func;
      if (LookupScalarFunc(f.name(), &func)) {
        std::vector<BoundExprPtr> args;
        args.reserve(f.args().size());
        for (const auto& a : f.args()) {
          WSQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                               BindScalar(*a, schema));
          args.push_back(std::move(bound));
        }
        return BoundExprPtr(
            std::make_unique<BoundFunction>(func, std::move(args)));
      }
      return Status::BindError(
          "aggregate function in a non-aggregated context: " +
          expr.ToString());
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<std::vector<Binder::Source>> Binder::ResolveSources(
    const SelectStatement& stmt) {
  if (stmt.from.empty()) {
    return Status::BindError("FROM clause is empty");
  }
  std::vector<Source> sources;
  std::set<std::string> seen;
  for (const TableRef& ref : stmt.from) {
    Source src;
    src.effective_name = ref.EffectiveName();
    std::string key = ToLower(src.effective_name);
    if (!seen.insert(key).second) {
      return Status::BindError("duplicate table name/alias in FROM: " +
                               src.effective_name);
    }
    auto stored = catalog_->GetTable(ref.table);
    if (stored.ok()) {
      src.table = *stored;
    } else {
      auto vt = vtables_->Get(ref.table);
      if (!vt.ok()) {
        return Status::BindError("no such table or virtual table: " +
                                 ref.table);
      }
      src.is_virtual = true;
      src.vtable = *vt;
      src.rank_limit = options_.default_rank_limit;
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

Status Binder::DetermineTermCounts(const SelectStatement& stmt,
                                   std::vector<Source>* sources) {
  size_t num_virtual = 0;
  for (const Source& s : *sources) {
    if (s.is_virtual) ++num_virtual;
  }

  // Map qualifier → source index for virtual sources.
  auto find_virtual = [&](const std::string& qualifier) -> Source* {
    if (qualifier.empty()) {
      if (num_virtual == 1) {
        for (Source& s : *sources) {
          if (s.is_virtual) return &s;
        }
      }
      return nullptr;
    }
    for (Source& s : *sources) {
      if (s.is_virtual && EqualsIgnoreCase(s.effective_name, qualifier)) {
        return &s;
      }
    }
    return nullptr;
  };

  Status error;
  ForEachStatementExpr(stmt, [&](const ParsedExpr& e) {
    std::vector<const ColumnRefExpr*> refs;
    CollectColumnRefs(e, &refs);
    for (const ColumnRefExpr* ref : refs) {
      size_t term = ParseTermIndex(ref->name());
      if (term == 0) continue;
      Source* src = find_virtual(ref->qualifier());
      if (src == nullptr) {
        if (ref->qualifier().empty() && num_virtual > 1 &&
            error.ok()) {
          error = Status::BindError(
              "ambiguous term column " + ref->name() +
              ": qualify it with a table alias");
        }
        continue;
      }
      src->num_terms = std::max(src->num_terms, term);
    }
  });
  WSQ_RETURN_IF_ERROR(error);

  // A constant SearchExp can reference terms beyond any Ti column, and
  // raises n accordingly ("%1 near %3" needs T1..T3 to exist).
  if (stmt.where != nullptr) {
    std::vector<const ParsedExpr*> conjuncts;
    CollectConjuncts(*stmt.where, &conjuncts);
    for (const ParsedExpr* c : conjuncts) {
      if (c->kind() != ParsedExpr::Kind::kBinary) continue;
      const auto& bin = static_cast<const BinaryExpr&>(*c);
      if (bin.op() != BinaryOp::kEq) continue;
      const ParsedExpr* col = &bin.left();
      const ParsedExpr* lit = &bin.right();
      if (col->kind() != ParsedExpr::Kind::kColumnRef) {
        std::swap(col, lit);
      }
      if (col->kind() != ParsedExpr::Kind::kColumnRef ||
          lit->kind() != ParsedExpr::Kind::kLiteral) {
        continue;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      if (!EqualsIgnoreCase(ref.name(), "SearchExp")) continue;
      Source* src = find_virtual(ref.qualifier());
      if (src == nullptr) continue;
      const Value& v = static_cast<const LiteralExpr&>(*lit).value();
      if (!v.is_string()) continue;
      const std::string& s = v.AsString();
      for (size_t i = 0; i + 1 < s.size(); ++i) {
        if (s[i] == '%' && s[i + 1] >= '1' && s[i + 1] <= '9') {
          src->num_terms = std::max(
              src->num_terms, static_cast<size_t>(s[i + 1] - '0'));
        }
      }
    }
  }

  // Build schemas and offsets.
  size_t offset = 0;
  for (Source& s : *sources) {
    if (s.is_virtual) {
      s.schema = s.vtable->SchemaForTerms(s.num_terms)
                     .WithQualifier(s.effective_name);
    } else {
      s.schema = s.table->schema().WithQualifier(s.effective_name);
    }
    s.offset = offset;
    offset += s.schema.NumColumns();
  }
  return Status::OK();
}

Result<std::pair<size_t, size_t>> Binder::ResolveColumn(
    const std::vector<Source>& sources, const std::string& qualifier,
    const std::string& name) const {
  int found_source = -1;
  size_t found_col = 0;
  int matches = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(sources[i].effective_name, qualifier)) {
      continue;
    }
    for (size_t c = 0; c < sources[i].schema.NumColumns(); ++c) {
      if (EqualsIgnoreCase(sources[i].schema.column(c).name, name)) {
        found_source = static_cast<int>(i);
        found_col = c;
        ++matches;
      }
    }
  }
  if (matches == 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::BindError("column not found: " + full);
  }
  if (matches > 1) {
    return Status::BindError("ambiguous column reference: " + name);
  }
  return std::make_pair(static_cast<size_t>(found_source), found_col);
}

Status Binder::ClassifyWhere(const SelectStatement& stmt,
                             std::vector<Source>* sources,
                             std::vector<Residual>* residuals,
                             const Schema& combined) {
  if (stmt.where == nullptr) return Status::OK();
  std::vector<const ParsedExpr*> conjuncts;
  CollectConjuncts(*stmt.where, &conjuncts);

  for (const ParsedExpr* conjunct : conjuncts) {
    bool consumed = false;
    if (conjunct->kind() == ParsedExpr::Kind::kBinary) {
      const auto& bin = static_cast<const BinaryExpr&>(*conjunct);
      if (IsComparisonOp(bin.op())) {
        // Identify column/other sides.
        const ParsedExpr* a = &bin.left();
        const ParsedExpr* b = &bin.right();
        BinaryOp op = bin.op();

        auto side_source = [&](const ParsedExpr* e)
            -> std::optional<std::pair<size_t, size_t>> {
          if (e->kind() != ParsedExpr::Kind::kColumnRef) {
            return std::nullopt;
          }
          const auto& ref = static_cast<const ColumnRefExpr&>(*e);
          auto r = ResolveColumn(*sources, ref.qualifier(), ref.name());
          if (!r.ok()) return std::nullopt;
          return *r;
        };

        auto is_vinput = [&](std::pair<size_t, size_t> sc) {
          const Source& s = (*sources)[sc.first];
          return s.is_virtual && sc.second <= s.num_terms;
        };
        auto is_rank = [&](std::pair<size_t, size_t> sc) {
          const Source& s = (*sources)[sc.first];
          if (!s.is_virtual) return false;
          std::string rank_col = s.vtable->RankColumn();
          return !rank_col.empty() &&
                 EqualsIgnoreCase(s.schema.column(sc.second).name,
                                  rank_col);
        };

        std::optional<std::pair<size_t, size_t>> sa = side_source(a);
        std::optional<std::pair<size_t, size_t>> sb = side_source(b);

        // Normalize so the virtual input (if any) is on the left.
        if ((!sa.has_value() || !is_vinput(*sa)) && sb.has_value() &&
            is_vinput(*sb)) {
          std::swap(a, b);
          std::swap(sa, sb);
          op = MirrorComparison(op);
        }

        if (sa.has_value() && is_vinput(*sa)) {
          Source& vsrc = (*sources)[sa->first];
          size_t col = sa->second;  // 0 = SearchExp, 1..n = terms
          if (op != BinaryOp::kEq) {
            return Status::BindError(
                "virtual table input " +
                vsrc.schema.column(col).QualifiedName() +
                " must be bound with '='");
          }
          if (b->kind() == ParsedExpr::Kind::kLiteral) {
            const Value& v =
                static_cast<const LiteralExpr&>(*b).value();
            if (col == 0) {
              if (!v.is_string()) {
                return Status::BindError(
                    "SearchExp must be bound to a string");
              }
              if (!vsrc.search_exp.empty()) {
                return Status::BindError("SearchExp bound twice for " +
                                         vsrc.effective_name);
              }
              vsrc.search_exp = v.AsString();
            } else {
              bool already_dep = false;
              for (const auto& existing : vsrc.dependent_bindings) {
                if (existing.term_index == col) already_dep = true;
              }
              if (vsrc.constant_terms.count(col) > 0 || already_dep) {
                return Status::BindError(
                    vsrc.schema.column(col).QualifiedName() +
                    " bound twice");
              }
              vsrc.constant_terms[col] = v;
            }
            consumed = true;
          } else if (sb.has_value()) {
            // Equi-join binding from another source's column.
            if (is_vinput(*sb)) {
              return Status::BindError(
                  "cannot bind two virtual table inputs to each other: " +
                  conjunct->ToString());
            }
            if (col == 0) {
              return Status::BindError(
                  "SearchExp must be bound to a string constant");
            }
            if (sb->first > sa->first) {
              return Status::BindError(
                  (*sources)[sb->first].effective_name +
                  " must precede " + vsrc.effective_name +
                  " in the FROM clause to supply its T" +
                  std::to_string(col) + " binding");
            }
            if (sb->first == sa->first) {
              return Status::BindError(
                  "virtual table input bound to its own column: " +
                  conjunct->ToString());
            }
            for (const auto& existing : vsrc.dependent_bindings) {
              if (existing.term_index == col) {
                return Status::BindError(
                    vsrc.schema.column(col).QualifiedName() +
                    " bound twice");
              }
            }
            if (vsrc.constant_terms.count(col) > 0) {
              return Status::BindError(
                  vsrc.schema.column(col).QualifiedName() +
                  " bound twice");
            }
            vsrc.dependent_bindings.push_back(DependentJoinNode::Binding{
                (*sources)[sb->first].offset + sb->second, col});
            consumed = true;
          } else {
            return Status::BindError(
                "virtual table input must be bound by a constant or an "
                "equi-join: " +
                conjunct->ToString());
          }
        } else {
          // Rank pushdown: Rank <= k / Rank < k (literal side).
          const ParsedExpr* rank_side = nullptr;
          const ParsedExpr* lit_side = nullptr;
          BinaryOp rop = bin.op();
          if (sa.has_value() && is_rank(*sa) &&
              b->kind() == ParsedExpr::Kind::kLiteral) {
            rank_side = a;
            lit_side = b;
          } else if (sb.has_value() && is_rank(*sb) &&
                     a->kind() == ParsedExpr::Kind::kLiteral) {
            rank_side = b;
            lit_side = a;
            rop = MirrorComparison(rop);
          }
          if (rank_side != nullptr) {
            const Value& v =
                static_cast<const LiteralExpr&>(*lit_side).value();
            if (v.is_int()) {
              auto rank_source = side_source(rank_side);
              Source& rsrc = (*sources)[rank_source->first];
              if (rop == BinaryOp::kLe) {
                rsrc.rank_limit = std::min(rsrc.rank_limit, v.AsInt());
                consumed = true;
              } else if (rop == BinaryOp::kLt) {
                rsrc.rank_limit =
                    std::min(rsrc.rank_limit, v.AsInt() - 1);
                consumed = true;
              } else if (rop == BinaryOp::kEq) {
                rsrc.rank_limit = std::min(rsrc.rank_limit, v.AsInt());
                // Keep the equality as a residual filter too.
              }
            }
          }
        }
      }
    }

    if (!consumed) {
      // Residual predicate: validate all column refs and find the
      // latest source it mentions.
      std::vector<const ColumnRefExpr*> refs;
      CollectColumnRefs(*conjunct, &refs);
      size_t attach_after = 0;
      for (const ColumnRefExpr* ref : refs) {
        WSQ_ASSIGN_OR_RETURN(
            auto sc, ResolveColumn(*sources, ref->qualifier(),
                                   ref->name()));
        attach_after = std::max(attach_after, sc.first);
      }
      // Sanity: the conjunct must bind against the combined schema.
      WSQ_RETURN_IF_ERROR(BindScalar(*conjunct, combined).status());
      residuals->push_back(Residual{conjunct, attach_after});
    }
  }
  return Status::OK();
}

Result<PlanNodePtr> Binder::BuildJoinTree(std::vector<Source>* sources,
                                          std::vector<Residual>* residuals,
                                          const Schema& combined) {
  // Validate virtual bindings.
  for (Source& s : *sources) {
    if (!s.is_virtual) continue;
    if (s.num_terms == 0 && s.search_exp.empty()) {
      return Status::BindError(
          "virtual table " + s.effective_name +
          " requires at least one bound term (T1) or a constant "
          "SearchExp");
    }
    for (size_t k = 1; k <= s.num_terms; ++k) {
      bool has_const = s.constant_terms.count(k) > 0;
      bool has_dep = false;
      for (const auto& b : s.dependent_bindings) {
        if (b.term_index == k) has_dep = true;
      }
      if (!has_const && !has_dep) {
        return Status::BindError(
            s.effective_name + ".T" + std::to_string(k) +
            " is unbound; virtual table inputs must be bound by a "
            "constant or an equi-join");
      }
    }
  }

  // If a single-table equality residual matches an index on a stored
  // source, access it through an IndexScan and consume the conjunct.
  auto make_table_access = [&](Source& s,
                               size_t level) -> Result<PlanNodePtr> {
    for (Residual& r : *residuals) {
      if (r.expr == nullptr || r.attach_after != level) continue;
      if (r.expr->kind() != ParsedExpr::Kind::kBinary) continue;
      const auto& bin = static_cast<const BinaryExpr&>(*r.expr);
      if (bin.op() != BinaryOp::kEq) continue;
      const ParsedExpr* col = &bin.left();
      const ParsedExpr* lit = &bin.right();
      if (col->kind() != ParsedExpr::Kind::kColumnRef) {
        std::swap(col, lit);
      }
      if (col->kind() != ParsedExpr::Kind::kColumnRef ||
          lit->kind() != ParsedExpr::Kind::kLiteral) {
        continue;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      auto resolved = ResolveColumn(*sources, ref.qualifier(), ref.name());
      if (!resolved.ok() || resolved->first != level) continue;
      const Column& column = s.schema.column(resolved->second);
      IndexInfo* index = s.table->FindIndexOn(column.name);
      if (index == nullptr) continue;

      Value key = static_cast<const LiteralExpr&>(*lit).value();
      if (key.is_null()) continue;
      if (column.type == TypeId::kDouble && key.is_int()) {
        key = Value::Real(static_cast<double>(key.AsInt()));
      }
      if (key.type() != column.type) continue;  // let the filter error

      r.expr = nullptr;  // consumed by the index lookup
      return PlanNodePtr(std::make_unique<IndexScanNode>(
          s.table, index, s.effective_name, key));
    }

    // No equality: fold single-table range conjuncts on one indexed
    // column into an index range scan.
    IndexInfo* range_index = nullptr;
    size_t range_col = 0;
    IndexScanNode::Bound lo, hi;
    std::vector<Residual*> consumed;
    for (Residual& r : *residuals) {
      if (r.expr == nullptr || r.attach_after != level) continue;
      if (r.expr->kind() != ParsedExpr::Kind::kBinary) continue;
      const auto& bin = static_cast<const BinaryExpr&>(*r.expr);
      BinaryOp op = bin.op();
      if (op != BinaryOp::kLt && op != BinaryOp::kLe &&
          op != BinaryOp::kGt && op != BinaryOp::kGe) {
        continue;
      }
      const ParsedExpr* col = &bin.left();
      const ParsedExpr* lit = &bin.right();
      if (col->kind() != ParsedExpr::Kind::kColumnRef) {
        std::swap(col, lit);
        op = MirrorComparison(op);
      }
      if (col->kind() != ParsedExpr::Kind::kColumnRef ||
          lit->kind() != ParsedExpr::Kind::kLiteral) {
        continue;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      auto resolved = ResolveColumn(*sources, ref.qualifier(), ref.name());
      if (!resolved.ok() || resolved->first != level) continue;
      const Column& column = s.schema.column(resolved->second);
      IndexInfo* index = s.table->FindIndexOn(column.name);
      if (index == nullptr) continue;
      if (range_index != nullptr &&
          (index != range_index || resolved->second != range_col)) {
        continue;  // one indexed column per scan
      }

      Value bound = static_cast<const LiteralExpr&>(*lit).value();
      if (bound.is_null()) continue;
      if (column.type == TypeId::kDouble && bound.is_int()) {
        bound = Value::Real(static_cast<double>(bound.AsInt()));
      }
      if (bound.type() != column.type) continue;

      bool is_upper = op == BinaryOp::kLt || op == BinaryOp::kLe;
      bool inclusive = op == BinaryOp::kLe || op == BinaryOp::kGe;
      IndexScanNode::Bound* side = is_upper ? &hi : &lo;
      bool tighter;
      if (!side->value.has_value()) {
        tighter = true;
      } else {
        int c = bound.Compare(*side->value);
        tighter = is_upper ? (c < 0 || (c == 0 && !inclusive))
                           : (c > 0 || (c == 0 && !inclusive));
      }
      if (tighter) {
        side->value = std::move(bound);
        side->inclusive = inclusive;
      }
      range_index = index;
      range_col = resolved->second;
      consumed.push_back(&r);
    }
    if (range_index != nullptr) {
      for (Residual* r : consumed) r->expr = nullptr;
      return PlanNodePtr(std::make_unique<IndexScanNode>(
          s.table, range_index, s.effective_name, std::move(lo),
          std::move(hi)));
    }

    return PlanNodePtr(
        std::make_unique<ScanNode>(s.table, s.effective_name));
  };

  auto make_ev_scan = [&](Source& s) {
    auto ev = std::make_unique<EVScanNode>(s.vtable, s.effective_name,
                                           s.num_terms);
    ev->constant_terms = s.constant_terms;
    ev->search_exp = s.search_exp;
    ev->rank_limit = s.rank_limit;
    return ev;
  };

  auto attach_residuals = [&](PlanNodePtr node,
                              size_t level) -> Result<PlanNodePtr> {
    for (Residual& r : *residuals) {
      if (r.expr == nullptr || r.attach_after != level) continue;
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr pred,
                           BindScalar(*r.expr, combined));
      node = std::make_unique<FilterNode>(std::move(node),
                                          std::move(pred));
      r.expr = nullptr;
    }
    return node;
  };

  // First source.
  Source& first = (*sources)[0];
  PlanNodePtr plan;
  if (first.is_virtual) {
    if (!first.dependent_bindings.empty()) {
      return Status::Internal(
          "dependent binding on the first FROM table escaped validation");
    }
    plan = make_ev_scan(first);
  } else {
    WSQ_ASSIGN_OR_RETURN(plan, make_table_access(first, 0));
  }
  WSQ_ASSIGN_OR_RETURN(plan, attach_residuals(std::move(plan), 0));

  for (size_t i = 1; i < sources->size(); ++i) {
    Source& s = (*sources)[i];
    if (s.is_virtual) {
      PlanNodePtr ev = make_ev_scan(s);
      if (!s.dependent_bindings.empty()) {
        plan = std::make_unique<DependentJoinNode>(
            std::move(plan), std::move(ev), s.dependent_bindings);
      } else {
        plan = std::make_unique<CrossProductNode>(std::move(plan),
                                                  std::move(ev));
      }
    } else {
      WSQ_ASSIGN_OR_RETURN(PlanNodePtr scan, make_table_access(s, i));
      // Fold this level's residuals into the join predicate.
      BoundExprPtr pred;
      for (Residual& r : *residuals) {
        if (r.expr == nullptr || r.attach_after != i) continue;
        WSQ_ASSIGN_OR_RETURN(BoundExprPtr p, BindScalar(*r.expr, combined));
        if (pred == nullptr) {
          pred = std::move(p);
        } else {
          pred = std::make_unique<BoundBinary>(
              BinaryOp::kAnd, std::move(pred), std::move(p));
        }
        r.expr = nullptr;
      }
      if (pred != nullptr) {
        plan = std::make_unique<NestedLoopJoinNode>(
            std::move(plan), std::move(scan), std::move(pred));
      } else {
        plan = std::make_unique<CrossProductNode>(std::move(plan),
                                                  std::move(scan));
      }
    }
    WSQ_ASSIGN_OR_RETURN(plan, attach_residuals(std::move(plan), i));
  }

  // Any residual left is a bug.
  for (const Residual& r : *residuals) {
    if (r.expr != nullptr) {
      return Status::Internal("unattached residual predicate: " +
                              r.expr->ToString());
    }
  }
  return plan;
}

namespace {

struct Substitution {
  std::string text;  // parsed-expression rendering
  size_t column;     // aggregate output column
};

/// Binds `expr` against the aggregate output: subtrees matching a
/// substitution (a GROUP BY expression or an aggregate call, compared
/// by rendered text) become column refs; other column refs are errors.
Result<BoundExprPtr> BindOverAggregate(
    const ParsedExpr& expr, const std::vector<Substitution>& subs,
    const Schema& out_schema) {
  std::string text = expr.ToString();
  for (const Substitution& s : subs) {
    if (EqualsIgnoreCase(s.text, text)) {
      return BoundExprPtr(std::make_unique<BoundColumnRef>(
          s.column, out_schema.column(s.column)));
    }
  }
  switch (expr.kind()) {
    case ParsedExpr::Kind::kLiteral:
      return BoundExprPtr(std::make_unique<BoundLiteral>(
          static_cast<const LiteralExpr&>(expr).value()));
    case ParsedExpr::Kind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      WSQ_ASSIGN_OR_RETURN(
          BoundExprPtr operand,
          BindOverAggregate(u.operand(), subs, out_schema));
      return BoundExprPtr(
          std::make_unique<BoundUnary>(u.op(), std::move(operand)));
    }
    case ParsedExpr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr left,
                           BindOverAggregate(b.left(), subs, out_schema));
      WSQ_ASSIGN_OR_RETURN(BoundExprPtr right,
                           BindOverAggregate(b.right(), subs, out_schema));
      return BoundExprPtr(std::make_unique<BoundBinary>(
          b.op(), std::move(left), std::move(right)));
    }
    case ParsedExpr::Kind::kColumnRef:
      return Status::BindError(
          expr.ToString() +
          " must appear in GROUP BY or inside an aggregate function");
    case ParsedExpr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FuncExpr&>(expr);
      ScalarFunc scalar;
      if (LookupScalarFunc(f.name(), &scalar)) {
        std::vector<BoundExprPtr> args;
        args.reserve(f.args().size());
        for (const auto& a : f.args()) {
          WSQ_ASSIGN_OR_RETURN(
              BoundExprPtr bound,
              BindOverAggregate(*a, subs, out_schema));
          args.push_back(std::move(bound));
        }
        return BoundExprPtr(
            std::make_unique<BoundFunction>(scalar, std::move(args)));
      }
      return Status::BindError("nested or unknown aggregate: " +
                               expr.ToString());
    }
    case ParsedExpr::Kind::kStar:
      return Status::BindError("'*' is not valid in this context");
  }
  return Status::Internal("unknown expression kind");
}

Result<AggFunc> AggFuncFromName(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "COUNT") return AggFunc::kCount;
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "AVG") return AggFunc::kAvg;
  if (upper == "MIN") return AggFunc::kMin;
  if (upper == "MAX") return AggFunc::kMax;
  return Status::BindError("unknown aggregate function: " + name);
}

TypeId AggOutputType(AggFunc f, const BoundExpr* arg) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kAvg:
      return TypeId::kDouble;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg != nullptr ? arg->OutputType() : TypeId::kNull;
  }
  return TypeId::kNull;
}

}  // namespace

Result<PlanNodePtr> Binder::ApplyAggregation(
    const SelectStatement& stmt, PlanNodePtr plan,
    std::vector<SelectItem>* select_out) {
  // Gather aggregate calls from SELECT / HAVING / ORDER BY.
  std::vector<const FuncExpr*> calls;
  for (const SelectItem& item : stmt.select_list) {
    CollectAggCalls(*item.expr, &calls);
  }
  if (stmt.having != nullptr) CollectAggCalls(*stmt.having, &calls);
  for (const auto& o : stmt.order_by) CollectAggCalls(*o.expr, &calls);

  bool aggregated = !calls.empty() || !stmt.group_by.empty();
  if (!aggregated) {
    if (stmt.having != nullptr) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    // Pass the select list through untouched.
    for (const SelectItem& item : stmt.select_list) {
      select_out->push_back(SelectItem{item.expr->Clone(), item.alias});
    }
    return plan;
  }

  const Schema& in_schema = plan->schema();
  std::vector<Substitution> subs;
  std::vector<BoundExprPtr> group_exprs;
  Schema out_schema;

  for (const auto& g : stmt.group_by) {
    WSQ_ASSIGN_OR_RETURN(BoundExprPtr bound, BindScalar(*g, in_schema));
    std::string name = g->ToString();
    std::string qualifier;
    if (g->kind() == ParsedExpr::Kind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*g);
      name = ref.name();
      // Preserve the source qualifier so later lookups still work.
      qualifier = in_schema
                      .column(static_cast<const BoundColumnRef&>(*bound)
                                  .index())
                      .qualifier;
    }
    subs.push_back(Substitution{g->ToString(), out_schema.NumColumns()});
    out_schema.AddColumn(Column(name, bound->OutputType(), qualifier));
    group_exprs.push_back(std::move(bound));
  }

  std::vector<AggregateNode::AggSpec> specs;
  for (const FuncExpr* call : calls) {
    std::string text = call->ToString();
    bool dup = false;
    for (const Substitution& s : subs) {
      if (EqualsIgnoreCase(s.text, text)) dup = true;
    }
    if (dup) continue;

    WSQ_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(call->name()));
    AggregateNode::AggSpec spec;
    spec.func = func;
    if (call->args().size() == 1 &&
        call->args()[0]->kind() == ParsedExpr::Kind::kStar) {
      if (func != AggFunc::kCount) {
        return Status::BindError("only COUNT(*) accepts '*'");
      }
      spec.func = AggFunc::kCountStar;
    } else if (call->args().size() == 1) {
      WSQ_ASSIGN_OR_RETURN(spec.arg,
                           BindScalar(*call->args()[0], in_schema));
    } else {
      return Status::BindError(
          "aggregate functions take exactly one argument: " + text);
    }

    subs.push_back(Substitution{text, out_schema.NumColumns()});
    out_schema.AddColumn(
        Column(text, AggOutputType(spec.func, spec.arg.get()), ""));
    specs.push_back(std::move(spec));
  }

  plan = std::make_unique<AggregateNode>(std::move(plan),
                                         std::move(group_exprs),
                                         std::move(specs), out_schema);

  if (stmt.having != nullptr) {
    WSQ_ASSIGN_OR_RETURN(
        BoundExprPtr pred,
        BindOverAggregate(*stmt.having, subs, out_schema));
    plan = std::make_unique<FilterNode>(std::move(plan), std::move(pred));
  }

  // The select list (and later ORDER BY) now bind against the aggregate
  // output. Rewrite items into column refs over out_schema by reusing
  // the substitution-aware binder at projection time: we pre-validate
  // here and hand the original expressions through.
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->kind() == ParsedExpr::Kind::kStar) {
      return Status::BindError("SELECT * cannot be used with GROUP BY");
    }
    WSQ_RETURN_IF_ERROR(
        BindOverAggregate(*item.expr, subs, out_schema).status());
    select_out->push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  return plan;
}

Result<PlanNodePtr> Binder::ApplyProjection(
    const SelectStatement& /*stmt*/,
    const std::vector<SelectItem>& items, PlanNodePtr plan) {
  const Schema& in_schema = plan->schema();
  std::vector<BoundExprPtr> exprs;
  Schema out_schema;

  // When the input is an aggregate (or HAVING filter above one), the
  // select expressions were pre-validated by ApplyAggregation and every
  // aggregate call / group expression matches an input column by name;
  // BindScalar handles plain paths. We try the plain bind first, then
  // fall back to a by-text lookup against the input schema (which is
  // how "COUNT(*)" finds the aggregate output column).
  auto bind_item = [&](const ParsedExpr& e) -> Result<BoundExprPtr> {
    // By-text match against input columns (aggregate outputs).
    std::string text = e.ToString();
    for (size_t i = 0; i < in_schema.NumColumns(); ++i) {
      if (EqualsIgnoreCase(in_schema.column(i).name, text)) {
        return BoundExprPtr(std::make_unique<BoundColumnRef>(
            i, in_schema.column(i)));
      }
    }
    std::vector<Substitution> subs;
    for (size_t i = 0; i < in_schema.NumColumns(); ++i) {
      subs.push_back(Substitution{in_schema.column(i).name, i});
    }
    auto plain = BindScalar(e, in_schema);
    if (plain.ok()) return plain;
    return BindOverAggregate(e, subs, in_schema);
  };

  for (const SelectItem& item : items) {
    if (item.expr->kind() == ParsedExpr::Kind::kStar) {
      for (size_t i = 0; i < in_schema.NumColumns(); ++i) {
        exprs.push_back(std::make_unique<BoundColumnRef>(
            i, in_schema.column(i)));
        out_schema.AddColumn(in_schema.column(i));
      }
      continue;
    }
    WSQ_ASSIGN_OR_RETURN(BoundExprPtr bound, bind_item(*item.expr));
    Column col;
    if (!item.alias.empty()) {
      col = Column(item.alias, bound->OutputType(), "");
    } else if (item.expr->kind() == ParsedExpr::Kind::kColumnRef &&
               bound->kind() == BoundExpr::Kind::kColumnRef) {
      col = in_schema.column(
          static_cast<const BoundColumnRef&>(*bound).index());
    } else {
      col = Column(item.expr->ToString(), bound->OutputType(), "");
    }
    out_schema.AddColumn(col);
    exprs.push_back(std::move(bound));
  }

  return PlanNodePtr(std::make_unique<ProjectNode>(
      std::move(plan), std::move(exprs), std::move(out_schema)));
}

Result<PlanNodePtr> Binder::Bind(const SelectStatement& stmt) {
  WSQ_ASSIGN_OR_RETURN(std::vector<Source> sources,
                       ResolveSources(stmt));
  WSQ_RETURN_IF_ERROR(DetermineTermCounts(stmt, &sources));

  Schema combined;
  for (const Source& s : sources) {
    combined = Schema::Concat(combined, s.schema);
  }

  std::vector<Residual> residuals;
  WSQ_RETURN_IF_ERROR(
      ClassifyWhere(stmt, &sources, &residuals, combined));
  WSQ_ASSIGN_OR_RETURN(PlanNodePtr plan,
                       BuildJoinTree(&sources, &residuals, combined));

  std::vector<SelectItem> items;
  WSQ_ASSIGN_OR_RETURN(plan,
                       ApplyAggregation(stmt, std::move(plan), &items));
  WSQ_ASSIGN_OR_RETURN(plan,
                       ApplyProjection(stmt, items, std::move(plan)));

  if (stmt.distinct) {
    plan = std::make_unique<DistinctNode>(std::move(plan));
  }

  if (!stmt.order_by.empty()) {
    const Schema& out = plan->schema();
    std::vector<SortNode::SortKey> keys;
    for (const OrderByItem& item : stmt.order_by) {
      SortNode::SortKey key;
      key.descending = item.descending;
      // Try binding against the projected output (aliases and column
      // names), then by rendered-text match with a select item.
      auto bound = BindScalar(*item.expr, out);
      if (bound.ok()) {
        key.expr = std::move(bound).value();
      } else {
        std::string text = item.expr->ToString();
        bool matched = false;
        for (size_t i = 0; i < out.NumColumns(); ++i) {
          if (EqualsIgnoreCase(out.column(i).name, text)) {
            key.expr =
                std::make_unique<BoundColumnRef>(i, out.column(i));
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Status::BindError(
              "ORDER BY expression must be a select-list column or "
              "alias: " +
              text);
        }
      }
      keys.push_back(std::move(key));
    }
    plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
  }

  if (stmt.limit.has_value()) {
    plan = std::make_unique<LimitNode>(std::move(plan), *stmt.limit);
  }
  return plan;
}

}  // namespace wsq
