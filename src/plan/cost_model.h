#ifndef WSQ_PLAN_COST_MODEL_H_
#define WSQ_PLAN_COST_MODEL_H_

#include <string>

#include "common/result.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Static estimates for a (possibly rewritten) plan. The paper defers
/// "cost-based query optimization in the presence of asynchronous
/// iteration" to future work but names the quantities that matter
/// (§4.5.4): external call counts, achievable concurrency, and ReqSync
/// buffering volume. This model estimates exactly those, so EXPLAIN can
/// annotate plans and ablations can be compared analytically.
struct PlanCostEstimate {
  /// Expected output cardinality.
  double output_rows = 0;
  /// Expected total external (search engine) calls.
  double external_calls = 0;
  /// Largest number of calls that can be outstanding simultaneously —
  /// calls issued below one ReqSync before anything blocks. Sequential
  /// plans score 1 (if they call at all), fully percolated plans score
  /// the whole call budget.
  double max_concurrent_calls = 0;
  /// Peak tuples buffered inside a single ReqSync (its full-buffering
  /// Open drains the child).
  double reqsync_buffered_tuples = 0;

  std::string ToString() const;
};

/// Tuning constants; defaults are deliberately crude — the point is
/// comparing plan *shapes*, not absolute accuracy.
struct CostModelOptions {
  /// Selectivity assumed for each filter/join predicate.
  double predicate_selectivity = 0.33;
  /// Expected fraction of the rank limit a WebPages call returns.
  double webpages_hit_fraction = 0.6;
};

/// Walks the plan, consulting stored-table cardinalities (heap counts).
Result<PlanCostEstimate> EstimatePlanCost(const PlanNode& plan);
Result<PlanCostEstimate> EstimatePlanCost(const PlanNode& plan,
                                          const CostModelOptions& options);

}  // namespace wsq

#endif  // WSQ_PLAN_COST_MODEL_H_
