#ifndef WSQ_PLAN_BINDER_H_
#define WSQ_PLAN_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "parser/ast.h"
#include "plan/logical_plan.h"
#include "vtab/virtual_table.h"

namespace wsq {

struct BinderOptions {
  /// Paper §3: "we assume a default selection predicate Rank < 20 to
  /// prevent runaway queries" — expressed as an inclusive limit.
  int64_t default_rank_limit = 19;
};

/// Translates a parsed SELECT into a logical plan:
///  - FROM-order left-deep join tree (the Redbase convention, §5);
///  - WHERE conjuncts classified into virtual-table constant bindings,
///    dependent-join bindings, rank-limit pushdowns, join predicates,
///    and residual filters;
///  - aggregation, projection, DISTINCT, ORDER BY, LIMIT on top.
class Binder {
 public:
  Binder(const Catalog* catalog, const VirtualTableRegistry* vtables,
         BinderOptions options = BinderOptions());

  /// Builds the (synchronous) logical plan. The asynchronous-iteration
  /// rewrite is applied separately (async_rewriter.h).
  Result<PlanNodePtr> Bind(const SelectStatement& stmt);

  /// Binds a scalar expression against `schema` (exposed for tests and
  /// the executor's INSERT path).
  static Result<BoundExprPtr> BindScalar(const ParsedExpr& expr,
                                         const Schema& schema);

 private:
  struct Source {
    std::string effective_name;
    bool is_virtual = false;
    TableInfo* table = nullptr;
    VirtualTable* vtable = nullptr;
    size_t num_terms = 0;
    Schema schema;
    size_t offset = 0;  // column offset within the combined schema

    // Virtual-table binding state gathered from WHERE conjuncts.
    std::map<size_t, Value> constant_terms;
    std::string search_exp;
    int64_t rank_limit = 0;
    std::vector<DependentJoinNode::Binding> dependent_bindings;
  };

  struct Residual {
    const ParsedExpr* expr;
    /// Highest source index referenced: the conjunct attaches right
    /// after that source joins.
    size_t attach_after;
  };

  Result<std::vector<Source>> ResolveSources(const SelectStatement& stmt);
  Status DetermineTermCounts(const SelectStatement& stmt,
                             std::vector<Source>* sources);
  Status ClassifyWhere(const SelectStatement& stmt,
                       std::vector<Source>* sources,
                       std::vector<Residual>* residuals,
                       const Schema& combined);
  Result<PlanNodePtr> BuildJoinTree(std::vector<Source>* sources,
                                    std::vector<Residual>* residuals,
                                    const Schema& combined);
  Result<PlanNodePtr> ApplyAggregation(const SelectStatement& stmt,
                                       PlanNodePtr plan,
                                       std::vector<SelectItem>* select_out);
  Result<PlanNodePtr> ApplyProjection(const SelectStatement& stmt,
                                      const std::vector<SelectItem>& items,
                                      PlanNodePtr plan);

  /// Resolves a column ref to (source index, column index in source);
  /// returns NotFound if it does not name a source column.
  Result<std::pair<size_t, size_t>> ResolveColumn(
      const std::vector<Source>& sources, const std::string& qualifier,
      const std::string& name) const;

  const Catalog* catalog_;
  const VirtualTableRegistry* vtables_;
  BinderOptions options_;
};

/// Splits an expression on top-level ANDs.
void CollectConjuncts(const ParsedExpr& expr,
                      std::vector<const ParsedExpr*>* out);

/// Parses "T<k>" (case-insensitive, k in 1..9); returns 0 otherwise.
size_t ParseTermIndex(const std::string& name);

}  // namespace wsq

#endif  // WSQ_PLAN_BINDER_H_
