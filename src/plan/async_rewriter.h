#ifndef WSQ_PLAN_ASYNC_REWRITER_H_
#define WSQ_PLAN_ASYNC_REWRITER_H_

#include "common/result.h"
#include "plan/logical_plan.h"

namespace wsq {

/// Knobs for the asynchronous-iteration rewrite; the non-default modes
/// exist for the §4.5.4 ablation benches.
struct RewriteOptions {
  /// Skip percolation: ReqSync stays at its insertion point (directly
  /// above each AEVScan's enclosing dependent join). This caps
  /// concurrency at one join's worth of calls.
  bool insert_only = false;
  /// Merge adjacent ReqSync operators (§4.5.3).
  bool consolidate = true;
  /// Rewrite clashing joins as selections over cross-products (§4.5.2).
  bool rewrite_clashing_joins = true;
  /// Use streaming ReqSyncs (emit completed tuples before the child is
  /// exhausted) instead of the paper's full-buffering default.
  bool streaming_reqsync = false;
  /// Degradation policy applied to every ReqSync in the plan: what to
  /// do with tuples whose external call fails or times out.
  OnCallError on_call_error = OnCallError::kFailQuery;
  /// Buffered-tuple budget applied to every ReqSync in the plan
  /// (see ReqSyncNode::max_buffered_rows); 0 = unbounded.
  uint64_t max_buffered_rows = 0;
  uint64_t max_buffered_bytes = 0;
  /// Shed the oldest pending tuple instead of applying backpressure
  /// when a budget is hit.
  bool shed_oldest = false;
};

/// Applies the paper's §4.5 algorithm to a bound plan:
///  1. Insertion  — every EVScan becomes an AEVScan with a ReqSync above
///     it (above its enclosing dependent join / cross product, the
///     lowest executable position).
///  2. Percolation — ReqSync operators are pulled up past non-clashing
///     operators; clashing selections are hoisted out of the way;
///     clashing joins become σ over ×.
///  3. Consolidation — adjacent ReqSyncs merge.
///
/// An operator O *clashes* with ReqSync (attribute set A) iff O depends
/// on a value in A, projects a column of A away, or is
/// aggregation/duplicate/cardinality-sensitive (Aggregate, Distinct,
/// Limit). Sort is conservatively treated as clashing even on
/// non-A keys because ReqSync emits tuples in completion order and
/// would destroy the sort.
Result<PlanNodePtr> ApplyAsyncIteration(
    PlanNodePtr plan, RewriteOptions options = RewriteOptions());

/// Number of ReqSync operators in the plan (tests/benches).
size_t CountReqSyncs(const PlanNode& plan);

/// Number of EVScan nodes marked async.
size_t CountAsyncScans(const PlanNode& plan);

}  // namespace wsq

#endif  // WSQ_PLAN_ASYNC_REWRITER_H_
