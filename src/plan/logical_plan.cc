#include "plan/logical_plan.h"

#include "common/strings.h"

namespace wsq {

std::string PlanNode::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

void PlanNode::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(Label());
  out->push_back('\n');
  for (const auto& child : children_) {
    child->AppendTo(out, indent + 1);
  }
}

std::string ScanNode::Label() const {
  std::string label = "Scan: " + table_->name();
  if (!EqualsIgnoreCase(effective_name_, table_->name())) {
    label += " " + effective_name_;
  }
  return label;
}

std::string IndexScanNode::Label() const {
  std::string label = "IndexScan: " + table_->name();
  if (!EqualsIgnoreCase(effective_name_, table_->name())) {
    label += " " + effective_name_;
  }
  const std::string& col = schema_.column(index_->column()).name;
  std::string restriction;
  if (IsEquality()) {
    restriction = col + " = " + lo_.value->ToString();
  } else {
    std::vector<std::string> parts;
    if (lo_.value.has_value()) {
      parts.push_back(col + (lo_.inclusive ? " >= " : " > ") +
                      lo_.value->ToString());
    }
    if (hi_.value.has_value()) {
      parts.push_back(col + (hi_.inclusive ? " <= " : " < ") +
                      hi_.value->ToString());
    }
    restriction = Join(parts, " and ");
  }
  label += " (" + restriction + ", index " + index_->name() + ")";
  return label;
}

std::vector<size_t> EVScanNode::OutputColumnIndices() const {
  std::vector<size_t> out;
  size_t inputs = schema_.NumColumns() - table_->NumOutputColumns();
  for (size_t i = inputs; i < schema_.NumColumns(); ++i) {
    out.push_back(i);
  }
  return out;
}

std::string EVScanNode::Label() const {
  std::string label = async ? "AEVScan: " : "EVScan: ";
  label += table_->name();
  if (!EqualsIgnoreCase(effective_name_, table_->name())) {
    label += " " + effective_name_;
  }
  std::vector<std::string> details;
  if (!search_exp.empty()) {
    details.push_back("SearchExp = '" + search_exp + "'");
  }
  for (const auto& [term, value] : constant_terms) {
    details.push_back(StrFormat("T%zu = ", term) + value.ToString());
  }
  if (!table_->SingleRowOutput()) {
    details.push_back(StrFormat("Rank <= %lld",
                                static_cast<long long>(rank_limit)));
  }
  if (!details.empty()) {
    label += " (" + Join(details, ", ") + ")";
  }
  return label;
}

std::string FilterNode::Label() const {
  return "Select: " + predicate_->ToString();
}

std::string ProjectNode::Label() const {
  std::vector<std::string> parts;
  parts.reserve(schema_.NumColumns());
  for (size_t i = 0; i < schema_.NumColumns(); ++i) {
    std::string rendered = exprs_[i]->ToString();
    const std::string& name = schema_.column(i).name;
    if (rendered == name || rendered == schema_.column(i).QualifiedName()) {
      parts.push_back(rendered);
    } else {
      parts.push_back(rendered + " AS " + name);
    }
  }
  return "Project: " + Join(parts, ", ");
}

std::string NestedLoopJoinNode::Label() const {
  return "Join: " + predicate_->ToString();
}

std::string DependentJoinNode::Label() const {
  const Schema& left = children_[0]->schema();
  const Schema& right = children_[1]->schema();
  std::vector<std::string> parts;
  parts.reserve(bindings_.size());
  for (const Binding& b : bindings_) {
    // Term columns sit at index term_index within the right schema
    // (index 0 is SearchExp).
    std::string rhs = b.term_index < right.NumColumns()
                          ? right.column(b.term_index).QualifiedName()
                          : StrFormat("T%zu", b.term_index);
    parts.push_back(left.column(b.left_column).QualifiedName() + " -> " +
                    rhs);
  }
  return "Dependent Join: " + Join(parts, ", ");
}

std::string SortNode::Label() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() +
                    (k.descending ? " desc" : ""));
  }
  return "Sort: " + Join(parts, ", ");
}

std::string_view AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

std::string AggregateNode::Label() const {
  std::vector<std::string> parts;
  for (const auto& g : group_by_) parts.push_back(g->ToString());
  for (const AggSpec& a : aggs_) {
    if (a.func == AggFunc::kCountStar) {
      parts.push_back("COUNT(*)");
    } else {
      parts.push_back(std::string(AggFuncToString(a.func)) + "(" +
                      a.arg->ToString() + ")");
    }
  }
  return "Aggregate: " + Join(parts, ", ");
}

std::string LimitNode::Label() const {
  return StrFormat("Limit: %lld", static_cast<long long>(limit_));
}

std::string_view OnCallErrorToString(OnCallError policy) {
  switch (policy) {
    case OnCallError::kFailQuery: return "fail-query";
    case OnCallError::kDropTuple: return "drop-tuple";
    case OnCallError::kNullPad: return "null-pad";
  }
  return "?";
}

std::string ReqSyncNode::Label() const {
  // The default policy is not rendered: golden plan tests (and EXPLAIN
  // users) only see the annotation when degradation is enabled.
  std::string label = streaming ? "ReqSync (streaming)" : "ReqSync";
  if (on_call_error != OnCallError::kFailQuery) {
    label += " [on error: ";
    label += OnCallErrorToString(on_call_error);
    label += "]";
  }
  return label;
}

}  // namespace wsq
