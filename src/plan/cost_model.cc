#include "plan/cost_model.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

std::string PlanCostEstimate::ToString() const {
  return StrFormat(
      "est. rows=%.0f, external calls=%.0f, max concurrent=%.0f, "
      "peak ReqSync buffer=%.0f",
      output_rows, external_calls, max_concurrent_calls,
      reqsync_buffered_tuples);
}

namespace {

/// Per-subtree accumulator. `pending_async` tracks async calls that
/// have been issued below this node but not yet awaited by a ReqSync —
/// that is the plan's in-flight potential at this point.
struct SubtreeCost {
  /// Logical (final, post-patching) cardinality.
  double rows = 0;
  /// Tuples that physically flow at execution time: an AEVScan emits
  /// ONE provisional tuple per open regardless of its logical fan-out,
  /// so async subtrees carry fewer exec rows until a ReqSync patches
  /// and proliferates them.
  double exec_rows = 0;
  double rows_per_open = 1;       // logical rows per EVScan open
  double exec_rows_per_open = 1;  // physical rows per EVScan open
  double calls = 0;
  double pending_async = 0;
  double max_concurrent = 0;
  double peak_buffer = 0;
};

class Estimator {
 public:
  explicit Estimator(const CostModelOptions& options)
      : options_(options) {}

  Result<SubtreeCost> Visit(const PlanNode& node) {
    switch (node.kind()) {
      case PlanNode::Kind::kScan: {
        const auto& scan = static_cast<const ScanNode&>(node);
        SubtreeCost c;
        WSQ_ASSIGN_OR_RETURN(int64_t rows, scan.table()->NumRows());
        c.rows = static_cast<double>(rows);
        c.exec_rows = c.rows;
        return c;
      }

      case PlanNode::Kind::kIndexScan: {
        const auto& scan = static_cast<const IndexScanNode&>(node);
        SubtreeCost c;
        WSQ_ASSIGN_OR_RETURN(int64_t rows, scan.table()->NumRows());
        // Equality through a secondary index: assume a selective key.
        c.rows = std::max(1.0, static_cast<double>(rows) * 0.05);
        c.exec_rows = c.rows;
        return c;
      }

      case PlanNode::Kind::kEVScan: {
        const auto& ev = static_cast<const EVScanNode&>(node);
        SubtreeCost c;
        c.rows_per_open =
            ev.table()->SingleRowOutput()
                ? 1.0
                : std::max(1.0, static_cast<double>(ev.rank_limit) *
                                    options_.webpages_hit_fraction);
        c.exec_rows_per_open = ev.async ? 1.0 : c.rows_per_open;
        // A leaf EVScan (constant-bound) opens exactly once; scans under
        // a dependent join are charged by the join below.
        c.rows = c.rows_per_open;
        c.exec_rows = c.exec_rows_per_open;
        c.calls = 1;
        if (ev.async) c.pending_async = 1;
        c.max_concurrent = c.pending_async;
        return c;
      }

      case PlanNode::Kind::kFilter: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost c, Visit(*node.child(0)));
        c.rows *= options_.predicate_selectivity;
        c.exec_rows *= options_.predicate_selectivity;
        return c;
      }

      case PlanNode::Kind::kProject:
        return Visit(*node.child(0));

      case PlanNode::Kind::kNestedLoopJoin: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost c, Combine(node));
        c.rows *= options_.predicate_selectivity;
        c.exec_rows *= options_.predicate_selectivity;
        return c;
      }

      case PlanNode::Kind::kCrossProduct:
        return Combine(node);

      case PlanNode::Kind::kDependentJoin: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost left, Visit(*node.child(0)));
        WSQ_ASSIGN_OR_RETURN(SubtreeCost right, Visit(*node.child(1)));
        SubtreeCost c;
        c.rows = left.rows * right.rows_per_open;
        c.exec_rows = left.exec_rows * right.exec_rows_per_open;
        // One right-side call per left tuple that physically arrives.
        double calls_here = left.exec_rows * right.calls;
        c.calls = left.calls + calls_here;
        // Async right-side calls all stay outstanding (the provisional
        // tuples flow on without waiting); synchronous ones resolve one
        // at a time and never accumulate.
        bool right_async = right.pending_async > 0;
        c.pending_async =
            left.pending_async + (right_async ? calls_here : 0);
        c.max_concurrent = std::max(
            {left.max_concurrent, right.max_concurrent,
             c.pending_async});
        c.peak_buffer = std::max(left.peak_buffer, right.peak_buffer);
        return c;
      }

      case PlanNode::Kind::kSort:
      case PlanNode::Kind::kDistinct:
        return Visit(*node.child(0));

      case PlanNode::Kind::kAggregate: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost c, Visit(*node.child(0)));
        const auto& agg = static_cast<const AggregateNode&>(node);
        c.rows = agg.group_by().empty()
                     ? 1.0
                     : std::max(1.0, c.rows *
                                         options_.predicate_selectivity);
        c.exec_rows = c.rows;
        return c;
      }

      case PlanNode::Kind::kLimit: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost c, Visit(*node.child(0)));
        const auto& limit = static_cast<const LimitNode&>(node);
        c.rows = std::min(c.rows, static_cast<double>(limit.limit()));
        c.exec_rows = std::min(c.exec_rows, c.rows);
        return c;
      }

      case PlanNode::Kind::kReqSync: {
        WSQ_ASSIGN_OR_RETURN(SubtreeCost c, Visit(*node.child(0)));
        // Everything pending below is outstanding together here. The
        // full-buffering Open holds the physically-arriving tuples;
        // patching proliferates them up to the logical cardinality —
        // the buffer peaks at the larger of the two.
        c.max_concurrent = std::max(c.max_concurrent, c.pending_async);
        c.peak_buffer =
            std::max({c.peak_buffer, c.exec_rows, c.rows});
        c.pending_async = 0;
        c.exec_rows = c.rows;  // patched/proliferated from here up
        return c;
      }
    }
    return Status::Internal("unknown plan node kind");
  }

 private:
  Result<SubtreeCost> Combine(const PlanNode& node) {
    WSQ_ASSIGN_OR_RETURN(SubtreeCost left, Visit(*node.child(0)));
    WSQ_ASSIGN_OR_RETURN(SubtreeCost right, Visit(*node.child(1)));
    SubtreeCost c;
    c.rows = left.rows * right.rows;
    c.exec_rows = left.exec_rows * right.exec_rows;
    c.calls = left.calls + right.calls;
    c.pending_async = left.pending_async + right.pending_async;
    c.max_concurrent =
        std::max({left.max_concurrent, right.max_concurrent,
                  c.pending_async});
    c.peak_buffer = std::max(left.peak_buffer, right.peak_buffer);
    return c;
  }

  CostModelOptions options_;
};

}  // namespace

Result<PlanCostEstimate> EstimatePlanCost(
    const PlanNode& plan, const CostModelOptions& options) {
  Estimator estimator(options);
  WSQ_ASSIGN_OR_RETURN(SubtreeCost c, estimator.Visit(plan));
  PlanCostEstimate out;
  out.output_rows = c.rows;
  out.external_calls = c.calls;
  out.max_concurrent_calls =
      std::max({c.max_concurrent, c.pending_async,
                c.calls > 0 ? 1.0 : 0.0});
  out.reqsync_buffered_tuples = c.peak_buffer;
  return out;
}

Result<PlanCostEstimate> EstimatePlanCost(const PlanNode& plan) {
  return EstimatePlanCost(plan, CostModelOptions());
}

}  // namespace wsq
