#ifndef WSQ_PLAN_LOGICAL_PLAN_H_
#define WSQ_PLAN_LOGICAL_PLAN_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expr.h"
#include "types/schema.h"
#include "vtab/virtual_table.h"

namespace wsq {

/// Operator tree produced by the binder and transformed by the
/// asynchronous-iteration rewriter. The executor interprets this tree
/// directly (one physical implementation per node kind, paper-style
/// iterator model).
class PlanNode {
 public:
  enum class Kind {
    kScan,           ///< stored-table sequential scan
    kIndexScan,      ///< stored-table equality lookup through a B+ tree
    kEVScan,         ///< external virtual table scan (sync or async)
    kFilter,         ///< selection σ
    kProject,        ///< projection π (with computed expressions)
    kNestedLoopJoin, ///< inner join with predicate
    kCrossProduct,   ///< ×
    kDependentJoin,  ///< binds left-side values into a right EVScan
    kSort,           ///< ORDER BY
    kDistinct,       ///< duplicate elimination
    kAggregate,      ///< GROUP BY + aggregate functions
    kLimit,          ///< LIMIT n
    kReqSync,        ///< asynchronous-iteration synchronizer (paper §4.1)
  };

  virtual ~PlanNode() = default;

  Kind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  const std::vector<std::unique_ptr<PlanNode>>& children() const {
    return children_;
  }
  std::vector<std::unique_ptr<PlanNode>>& children() { return children_; }
  PlanNode* child(size_t i) const { return children_[i].get(); }
  size_t num_children() const { return children_.size(); }

  /// One-line description used by the plan printer, e.g.
  /// "Dependent Join: Sigs.Name -> WebCount.T1".
  virtual std::string Label() const = 0;

  /// Multi-line indented tree rendering (EXPLAIN output and the
  /// Figure 2–8 golden tests).
  std::string ToString() const;

 protected:
  PlanNode(Kind kind, Schema schema)
      : kind_(kind), schema_(std::move(schema)) {}

  void AppendTo(std::string* out, int indent) const;

  Kind kind_;
  Schema schema_;
  std::vector<std::unique_ptr<PlanNode>> children_;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

class ScanNode : public PlanNode {
 public:
  ScanNode(TableInfo* table, std::string effective_name)
      : PlanNode(Kind::kScan,
                 table->schema().WithQualifier(effective_name)),
        table_(table),
        effective_name_(std::move(effective_name)) {}

  TableInfo* table() const { return table_; }
  const std::string& effective_name() const { return effective_name_; }

  std::string Label() const override;

 private:
  TableInfo* table_;
  std::string effective_name_;
};

/// Equality or range lookup through a secondary index (the Redbase IX
/// access path).
class IndexScanNode : public PlanNode {
 public:
  /// One side of a range restriction on the indexed column.
  struct Bound {
    std::optional<Value> value;  // nullopt = unbounded
    bool inclusive = true;
  };

  /// Equality scan.
  IndexScanNode(TableInfo* table, IndexInfo* index,
                std::string effective_name, const Value& key)
      : IndexScanNode(table, index, std::move(effective_name),
                      Bound{key, true}, Bound{key, true}) {}

  /// Range scan.
  IndexScanNode(TableInfo* table, IndexInfo* index,
                std::string effective_name, Bound lo, Bound hi)
      : PlanNode(Kind::kIndexScan,
                 table->schema().WithQualifier(effective_name)),
        table_(table),
        index_(index),
        effective_name_(std::move(effective_name)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}

  TableInfo* table() const { return table_; }
  IndexInfo* index() const { return index_; }
  const std::string& effective_name() const { return effective_name_; }
  const Bound& lo() const { return lo_; }
  const Bound& hi() const { return hi_; }

  /// True when lo == hi and both are inclusive.
  bool IsEquality() const {
    return lo_.value.has_value() && hi_.value.has_value() &&
           lo_.inclusive && hi_.inclusive &&
           lo_.value->Compare(*hi_.value) == 0;
  }

  std::string Label() const override;

 private:
  TableInfo* table_;
  IndexInfo* index_;
  std::string effective_name_;
  Bound lo_;
  Bound hi_;
};

/// External virtual table scan. Input columns (SearchExp, T1..Tn) are
/// bound by constants stored here and/or by a parent DependentJoin.
/// `async` distinguishes AEVScan (paper §4.1) from blocking EVScan.
class EVScanNode : public PlanNode {
 public:
  EVScanNode(VirtualTable* table, std::string effective_name,
             size_t num_terms)
      : PlanNode(Kind::kEVScan, table->SchemaForTerms(num_terms)
                                    .WithQualifier(effective_name)),
        table_(table),
        effective_name_(std::move(effective_name)),
        num_terms_(num_terms) {}

  VirtualTable* table() const { return table_; }
  const std::string& effective_name() const { return effective_name_; }
  size_t num_terms() const { return num_terms_; }

  /// Term index (1-based) → constant value, for WHERE Ti = 'literal'.
  std::map<size_t, Value> constant_terms;
  /// SearchExp override; empty uses the table default template.
  std::string search_exp;
  /// Max Rank to fetch (paper default: Rank < 20).
  int64_t rank_limit = 19;
  /// True after the asynchronous-iteration rewrite (AEVScan).
  bool async = false;

  /// Indices (within this node's schema) of the table's output columns.
  std::vector<size_t> OutputColumnIndices() const;

  std::string Label() const override;

 private:
  VirtualTable* table_;
  std::string effective_name_;
  size_t num_terms_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, BoundExprPtr predicate)
      : PlanNode(Kind::kFilter, child->schema()),
        predicate_(std::move(predicate)) {
    children_.push_back(std::move(child));
  }

  const BoundExpr& predicate() const { return *predicate_; }
  BoundExpr* mutable_predicate() { return predicate_.get(); }

  std::string Label() const override;

 private:
  BoundExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> exprs,
              Schema output_schema)
      : PlanNode(Kind::kProject, std::move(output_schema)),
        exprs_(std::move(exprs)) {
    children_.push_back(std::move(child));
  }

  const std::vector<BoundExprPtr>& exprs() const { return exprs_; }
  std::vector<BoundExprPtr>& mutable_exprs() { return exprs_; }

  std::string Label() const override;

 private:
  std::vector<BoundExprPtr> exprs_;
};

class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanNodePtr left, PlanNodePtr right,
                     BoundExprPtr predicate)
      : PlanNode(Kind::kNestedLoopJoin,
                 Schema::Concat(left->schema(), right->schema())),
        predicate_(std::move(predicate)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  /// Predicate over the concatenated schema; never null (predicate-free
  /// joins are CrossProductNode).
  const BoundExpr& predicate() const { return *predicate_; }
  BoundExprPtr TakePredicate() { return std::move(predicate_); }

  std::string Label() const override;

 private:
  BoundExprPtr predicate_;
};

class CrossProductNode : public PlanNode {
 public:
  CrossProductNode(PlanNodePtr left, PlanNodePtr right)
      : PlanNode(Kind::kCrossProduct,
                 Schema::Concat(left->schema(), right->schema())) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  std::string Label() const override { return "Cross-Product"; }
};

/// Supplies left-row values to the term columns of a right-side EVScan
/// (paper §4: "we rely on dependent joins to supply bindings to our
/// virtual tables").
class DependentJoinNode : public PlanNode {
 public:
  struct Binding {
    /// Column index within the LEFT child's schema.
    size_t left_column;
    /// 1-based term index (T1..Tn) of the right EVScan.
    size_t term_index;
  };

  DependentJoinNode(PlanNodePtr left, PlanNodePtr right,
                    std::vector<Binding> bindings)
      : PlanNode(Kind::kDependentJoin,
                 Schema::Concat(left->schema(), right->schema())),
        bindings_(std::move(bindings)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  const std::vector<Binding>& bindings() const { return bindings_; }

  std::string Label() const override;

 private:
  std::vector<Binding> bindings_;
};

class SortNode : public PlanNode {
 public:
  struct SortKey {
    BoundExprPtr expr;
    bool descending = false;
  };

  SortNode(PlanNodePtr child, std::vector<SortKey> keys)
      : PlanNode(Kind::kSort, child->schema()), keys_(std::move(keys)) {
    children_.push_back(std::move(child));
  }

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<SortKey>& mutable_keys() { return keys_; }

  std::string Label() const override;

 private:
  std::vector<SortKey> keys_;
};

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanNodePtr child)
      : PlanNode(Kind::kDistinct, child->schema()) {
    children_.push_back(std::move(child));
  }

  std::string Label() const override { return "Distinct"; }
};

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggFuncToString(AggFunc f);

class AggregateNode : public PlanNode {
 public:
  struct AggSpec {
    AggFunc func;
    /// Argument over the child schema; null for COUNT(*).
    BoundExprPtr arg;
  };

  AggregateNode(PlanNodePtr child, std::vector<BoundExprPtr> group_by,
                std::vector<AggSpec> aggs, Schema output_schema)
      : PlanNode(Kind::kAggregate, std::move(output_schema)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {
    children_.push_back(std::move(child));
  }

  const std::vector<BoundExprPtr>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  std::string Label() const override;

 private:
  std::vector<BoundExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanNodePtr child, int64_t limit)
      : PlanNode(Kind::kLimit, child->schema()), limit_(limit) {
    children_.push_back(std::move(child));
  }

  int64_t limit() const { return limit_; }

  std::string Label() const override;

 private:
  int64_t limit_;
};

/// What ReqSync does with a tuple whose external call fails (or times
/// out). The paper assumes a perfect Web; real engines hang, drop
/// requests, and return errors, so degradation must be a per-query
/// choice.
enum class OnCallError {
  /// Abort the whole query with the call's error (strict; default).
  kFailQuery,
  /// Cancel every tuple waiting on the failed call, as if the call had
  /// returned zero rows; the query answers from whatever succeeded.
  kDropTuple,
  /// Complete waiting tuples with NULL in the columns the call would
  /// have filled; the row count is preserved, gaps are visible.
  kNullPad,
};

std::string_view OnCallErrorToString(OnCallError policy);

/// Request synchronizer (paper §4.1): buffers incomplete tuples and
/// patches placeholders as their ReqPump calls complete, performing
/// tuple cancellation / completion / proliferation (§4.3–4.4).
class ReqSyncNode : public PlanNode {
 public:
  ReqSyncNode(PlanNodePtr child, std::vector<size_t> patched_columns)
      : PlanNode(Kind::kReqSync, child->schema()),
        patched_columns_(std::move(patched_columns)) {
    children_.push_back(std::move(child));
  }

  /// Streaming mode (paper §4.1: "it might make sense for ReqSync to
  /// make completed tuples available to its parent before exhausting
  /// execution of its child subplan"): Next() interleaves child pulls
  /// with completion processing instead of full-buffering at Open().
  /// Improves time-to-first-row; calls still launch as the child is
  /// drained, which now happens under the parent's demand.
  bool streaming = false;

  /// Degradation policy for failed external calls (deadline exceeded,
  /// engine unavailable, hard error after retries).
  OnCallError on_call_error = OnCallError::kFailQuery;

  /// Buffered-tuple budget: max pending (incomplete) tuples this
  /// operator may hold, counting proliferation copies, and max
  /// approximate bytes across those tuples. 0 = unbounded. When a pull
  /// from the child would exceed a budget, ReqSync stops pulling and
  /// processes completions until the buffer drains (backpressure) — or,
  /// with shed_oldest, drops the oldest pending tuple instead
  /// (ExecContext::shed_tuples) so the query keeps its bound without
  /// stalling.
  uint64_t max_buffered_rows = 0;
  uint64_t max_buffered_bytes = 0;
  bool shed_oldest = false;

  /// "ReqSync.A" (paper §4.5.2): indices of columns whose values this
  /// operator fills in; maintained through percolation for clash
  /// analysis.
  const std::vector<size_t>& patched_columns() const {
    return patched_columns_;
  }
  std::vector<size_t>* mutable_patched_columns() {
    return &patched_columns_;
  }

  std::string Label() const override;

 private:
  std::vector<size_t> patched_columns_;
};

}  // namespace wsq

#endif  // WSQ_PLAN_LOGICAL_PLAN_H_
