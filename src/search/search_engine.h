#ifndef WSQ_SEARCH_SEARCH_ENGINE_H_
#define WSQ_SEARCH_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "search/inverted_index.h"
#include "search/search_expr.h"
#include "web/corpus.h"

namespace wsq {

/// One ranked search result.
struct SearchHit {
  std::string url;
  /// 1-based rank, matching the paper's WebPages.Rank column.
  int rank = 0;
  std::string date;
  DocId doc = 0;
  double score = 0;
};

struct SearchEngineConfig {
  std::string name = "engine";
  /// Engines without NEAR (paper footnote 1: Google) treat a NEAR query
  /// as a plain conjunction.
  bool supports_near = true;
  /// Max distance between consecutive phrase starts for NEAR matches.
  size_t near_window = 10;
  /// Per-engine static-rank salt: two engines over the same corpus rank
  /// mostly by content score but break ties differently, so their top-k
  /// lists overlap without being identical (paper §3.1 Query 6).
  uint64_t rank_seed = 1;
  /// Blend of static (per-document) rank into the score, in [0,1].
  double static_rank_weight = 0.3;
};

/// A keyword search engine over a synthetic Web corpus.
///
/// Exposes exactly the two capabilities the paper's virtual tables
/// consume: a fast total-hit count (WebCount) and ranked top-k URLs
/// (WebPages). Evaluation is deterministic.
class SearchEngine {
 public:
  SearchEngine(const Corpus* corpus, SearchEngineConfig config);

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  const SearchEngineConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  const InvertedIndex& index() const { return index_; }

  /// Total number of matching pages ("many Web search engines can
  /// return a total number of pages immediately", §3).
  Result<int64_t> Count(std::string_view query_text) const;

  /// Top `k` hits, rank 1 first. Deterministic ordering: score
  /// descending, then doc id.
  Result<std::vector<SearchHit>> Search(std::string_view query_text,
                                        size_t k) const;

 private:
  struct Match {
    DocId doc;
    double tf;  // total phrase occurrences
  };

  /// Evaluates the query to matching docs with term-frequency scores.
  Result<std::vector<Match>> Evaluate(std::string_view query_text) const;

  /// Deterministic per-document static rank in [0,1).
  double StaticRank(DocId doc) const;

  const Corpus* corpus_;
  SearchEngineConfig config_;
  InvertedIndex index_;
};

}  // namespace wsq

#endif  // WSQ_SEARCH_SEARCH_ENGINE_H_
