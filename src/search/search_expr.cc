#include "search/search_expr.h"

#include "common/strings.h"
#include "web/document.h"

namespace wsq {

std::string SearchQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < phrases.size(); ++i) {
    if (i > 0) out += use_near ? " NEAR " : " AND ";
    out += "\"" + Join(phrases[i].terms, " ") + "\"";
  }
  return out;
}

Result<std::string> ExpandSearchTemplate(
    std::string_view search_exp, const std::vector<std::string>& terms) {
  std::string out;
  out.reserve(search_exp.size() + 16);
  for (size_t i = 0; i < search_exp.size(); ++i) {
    char c = search_exp[i];
    if (c == '%' && i + 1 < search_exp.size() &&
        search_exp[i + 1] >= '1' && search_exp[i + 1] <= '9') {
      size_t idx = static_cast<size_t>(search_exp[i + 1] - '1');
      if (idx >= terms.size()) {
        return Status::InvalidArgument(
            StrFormat("search expression references %%%zu but only %zu "
                      "terms are bound",
                      idx + 1, terms.size()));
      }
      out += terms[idx];
      ++i;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string DefaultSearchTemplate(size_t n, bool supports_near) {
  std::string out;
  for (size_t i = 1; i <= n; ++i) {
    if (i > 1) out += supports_near ? " near " : " ";
    out += "%" + std::to_string(i);
  }
  return out;
}

Result<SearchQuery> ParseSearchQuery(std::string_view text) {
  std::vector<std::string> tokens = TokenizeText(text);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty search query");
  }

  SearchQuery query;
  bool has_near = false;
  for (const std::string& t : tokens) {
    if (t == "near") {
      has_near = true;
      break;
    }
  }
  query.use_near = has_near;

  // Double-quoted phrase groups ("four corners") bind adjacent words
  // into one phrase for engines without NEAR. In NEAR queries the
  // operator already delimits phrases, so quotes are ignored there.
  if (!has_near && text.find('"') != std::string_view::npos) {
    bool inside = false;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i < text.size() && text[i] != '"') continue;
      std::string_view segment = text.substr(start, i - start);
      if (inside) {
        std::vector<std::string> phrase = TokenizeText(segment);
        if (phrase.empty()) {
          return Status::InvalidArgument("empty quoted phrase");
        }
        query.phrases.push_back(SearchPhrase{std::move(phrase)});
      } else {
        for (std::string& t : TokenizeText(segment)) {
          query.phrases.push_back(SearchPhrase{{std::move(t)}});
        }
      }
      if (i == text.size()) {
        if (inside) {
          return Status::InvalidArgument("unterminated quoted phrase");
        }
        break;
      }
      inside = !inside;
      start = i + 1;
    }
    if (query.phrases.empty()) {
      return Status::InvalidArgument("empty search query");
    }
    return query;
  }

  if (has_near) {
    SearchPhrase current;
    for (std::string& t : tokens) {
      if (t == "near") {
        if (current.terms.empty()) {
          return Status::InvalidArgument(
              "NEAR operator with empty operand");
        }
        query.phrases.push_back(std::move(current));
        current = SearchPhrase{};
      } else {
        current.terms.push_back(std::move(t));
      }
    }
    if (current.terms.empty()) {
      return Status::InvalidArgument("NEAR operator with empty operand");
    }
    query.phrases.push_back(std::move(current));
  } else {
    for (std::string& t : tokens) {
      query.phrases.push_back(SearchPhrase{{std::move(t)}});
    }
  }
  return query;
}

}  // namespace wsq
