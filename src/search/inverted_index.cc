#include "search/inverted_index.h"

#include <algorithm>

namespace wsq {

InvertedIndex::InvertedIndex(const Corpus* corpus) : corpus_(corpus) {
  for (const Document& doc : corpus->documents()) {
    for (uint32_t pos = 0; pos < doc.terms.size(); ++pos) {
      std::vector<Posting>& list = postings_[doc.terms[pos]];
      if (list.empty() || list.back().doc != doc.id) {
        list.push_back(Posting{doc.id, {}});
      }
      list.back().positions.push_back(pos);
    }
  }
}

const std::vector<Posting>* InvertedIndex::TermPostings(
    const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : &it->second;
}

size_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  const std::vector<Posting>* p = TermPostings(term);
  return p == nullptr ? 0 : p->size();
}

std::vector<Posting> InvertedIndex::PhrasePostings(
    const SearchPhrase& phrase) const {
  std::vector<Posting> result;
  if (phrase.terms.empty()) return result;

  const std::vector<Posting>* first = TermPostings(phrase.terms[0]);
  if (first == nullptr) return result;

  if (phrase.terms.size() == 1) return *first;

  // Gather the remaining term postings; bail if any term is absent.
  std::vector<const std::vector<Posting>*> lists;
  lists.push_back(first);
  for (size_t i = 1; i < phrase.terms.size(); ++i) {
    const std::vector<Posting>* p = TermPostings(phrase.terms[i]);
    if (p == nullptr) return result;
    lists.push_back(p);
  }

  // Intersect doc lists (all are sorted by doc id), then verify
  // adjacency of positions within each candidate document.
  std::vector<size_t> cursors(lists.size(), 0);
  while (true) {
    // Find the max current doc across lists; advance the laggards.
    DocId target = 0;
    bool done = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) {
        done = true;
        break;
      }
      target = std::max(target, (*lists[i])[cursors[i]].doc);
    }
    if (done) break;

    bool aligned = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      while (cursors[i] < lists[i]->size() &&
             (*lists[i])[cursors[i]].doc < target) {
        ++cursors[i];
      }
      if (cursors[i] >= lists[i]->size()) {
        aligned = false;
        done = true;
        break;
      }
      if ((*lists[i])[cursors[i]].doc != target) aligned = false;
    }
    if (done) break;
    if (!aligned) continue;

    // All lists point at `target`: collect phrase starts.
    Posting hit{target, {}};
    const std::vector<uint32_t>& starts =
        (*lists[0])[cursors[0]].positions;
    for (uint32_t start : starts) {
      bool match = true;
      for (size_t i = 1; i < lists.size(); ++i) {
        const std::vector<uint32_t>& pos =
            (*lists[i])[cursors[i]].positions;
        if (!std::binary_search(pos.begin(), pos.end(),
                                start + static_cast<uint32_t>(i))) {
          match = false;
          break;
        }
      }
      if (match) hit.positions.push_back(start);
    }
    if (!hit.positions.empty()) result.push_back(std::move(hit));

    for (size_t i = 0; i < lists.size(); ++i) ++cursors[i];
  }
  return result;
}

}  // namespace wsq
