#ifndef WSQ_SEARCH_SEARCH_EXPR_H_
#define WSQ_SEARCH_SEARCH_EXPR_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace wsq {

/// A phrase: consecutive terms that must appear adjacently.
struct SearchPhrase {
  std::vector<std::string> terms;

  bool operator==(const SearchPhrase& o) const { return terms == o.terms; }
};

/// A parsed keyword query: phrases combined with NEAR (proximity) or
/// plain conjunction.
struct SearchQuery {
  std::vector<SearchPhrase> phrases;
  /// True when the query used the NEAR operator between phrases.
  bool use_near = false;

  std::string ToString() const;
};

/// Expands a parameterized search expression (paper §3): "%1 near %2"
/// with terms {"Colorado", "four corners"} becomes
/// "Colorado near four corners". Placeholders run %1..%9; referencing a
/// term that was not supplied is an error.
Result<std::string> ExpandSearchTemplate(
    std::string_view search_exp, const std::vector<std::string>& terms);

/// The paper's default SearchExp for `n` bound terms:
/// "%1 near %2 near ... near %n", or "%1 %2 ... %n" for engines without
/// a NEAR operator (footnote 1).
std::string DefaultSearchTemplate(size_t n, bool supports_near);

/// Parses an expanded query string. The token `near` (case-insensitive)
/// is the proximity operator; segments between NEARs are phrases. With
/// no NEAR, every token is an independent conjunct.
Result<SearchQuery> ParseSearchQuery(std::string_view text);

}  // namespace wsq

#endif  // WSQ_SEARCH_SEARCH_EXPR_H_
