#include "search/search_engine.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace wsq {

SearchEngine::SearchEngine(const Corpus* corpus, SearchEngineConfig config)
    : corpus_(corpus), config_(std::move(config)), index_(corpus) {}

double SearchEngine::StaticRank(DocId doc) const {
  // SplitMix-style mix of (rank_seed, doc id).
  uint64_t z = config_.rank_seed * 0x9E3779B97f4A7C15ull + doc;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return (z >> 11) * (1.0 / 9007199254740992.0);
}

namespace {

/// Minimum absolute distance between any pair of positions drawn from
/// two sorted lists (classic two-pointer merge).
uint32_t MinDistance(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  uint32_t best = UINT32_MAX;
  while (i < a.size() && j < b.size()) {
    uint32_t x = a[i], y = b[j];
    best = std::min(best, x > y ? x - y : y - x);
    if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

}  // namespace

Result<std::vector<SearchEngine::Match>> SearchEngine::Evaluate(
    std::string_view query_text) const {
  WSQ_ASSIGN_OR_RETURN(SearchQuery query, ParseSearchQuery(query_text));
  bool near = query.use_near && config_.supports_near;

  // Phrase postings per conjunct.
  std::vector<std::vector<Posting>> phrase_posts;
  phrase_posts.reserve(query.phrases.size());
  for (const SearchPhrase& p : query.phrases) {
    std::vector<Posting> posts = index_.PhrasePostings(p);
    if (posts.empty()) return std::vector<Match>{};  // conjunct absent
    phrase_posts.push_back(std::move(posts));
  }

  // Intersect by doc id (all lists sorted).
  std::vector<Match> matches;
  std::vector<size_t> cursors(phrase_posts.size(), 0);
  while (true) {
    DocId target = 0;
    bool done = false;
    for (size_t i = 0; i < phrase_posts.size(); ++i) {
      if (cursors[i] >= phrase_posts[i].size()) {
        done = true;
        break;
      }
      target = std::max(target, phrase_posts[i][cursors[i]].doc);
    }
    if (done) break;

    bool aligned = true;
    for (size_t i = 0; i < phrase_posts.size(); ++i) {
      while (cursors[i] < phrase_posts[i].size() &&
             phrase_posts[i][cursors[i]].doc < target) {
        ++cursors[i];
      }
      if (cursors[i] >= phrase_posts[i].size()) {
        aligned = false;
        done = true;
        break;
      }
      if (phrase_posts[i][cursors[i]].doc != target) aligned = false;
    }
    if (done) break;
    if (!aligned) continue;

    bool ok = true;
    if (near && phrase_posts.size() > 1) {
      // Consecutive phrases must fall within the proximity window
      // (order-insensitive, AltaVista-style).
      for (size_t i = 0; i + 1 < phrase_posts.size(); ++i) {
        const Posting& pa = phrase_posts[i][cursors[i]];
        const Posting& pb = phrase_posts[i + 1][cursors[i + 1]];
        size_t span = config_.near_window +
                      std::max(query.phrases[i].terms.size(),
                               query.phrases[i + 1].terms.size());
        if (MinDistance(pa.positions, pb.positions) > span) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      double tf = 0;
      for (size_t i = 0; i < phrase_posts.size(); ++i) {
        tf += static_cast<double>(
            phrase_posts[i][cursors[i]].positions.size());
      }
      matches.push_back(Match{target, tf});
    }
    for (size_t i = 0; i < phrase_posts.size(); ++i) ++cursors[i];
  }
  return matches;
}

Result<int64_t> SearchEngine::Count(std::string_view query_text) const {
  WSQ_ASSIGN_OR_RETURN(std::vector<Match> matches, Evaluate(query_text));
  return static_cast<int64_t>(matches.size());
}

Result<std::vector<SearchHit>> SearchEngine::Search(
    std::string_view query_text, size_t k) const {
  WSQ_ASSIGN_OR_RETURN(std::vector<Match> matches, Evaluate(query_text));

  std::vector<SearchHit> hits;
  hits.reserve(matches.size());
  for (const Match& m : matches) {
    const Document& doc = corpus_->document(m.doc);
    SearchHit hit;
    hit.doc = m.doc;
    hit.url = doc.url;
    hit.date = doc.date;
    double content = m.tf / (1.0 + std::log1p(doc.terms.size()));
    hit.score = (1.0 - config_.static_rank_weight) * content +
                config_.static_rank_weight * StaticRank(m.doc);
    hits.push_back(std::move(hit));
  }

  size_t top = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + top, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  hits.resize(top);
  for (size_t i = 0; i < hits.size(); ++i) {
    hits[i].rank = static_cast<int>(i + 1);
  }
  return hits;
}

}  // namespace wsq
