#ifndef WSQ_SEARCH_INVERTED_INDEX_H_
#define WSQ_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/search_expr.h"
#include "web/corpus.h"

namespace wsq {

/// Positional posting: the sorted token positions of a term (or a phrase
/// start) within one document.
struct Posting {
  DocId doc = 0;
  std::vector<uint32_t> positions;
};

/// Positional inverted index over a Corpus.
class InvertedIndex {
 public:
  explicit InvertedIndex(const Corpus* corpus);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Postings for a single term; null when absent from the corpus.
  const std::vector<Posting>* TermPostings(const std::string& term) const;

  /// Postings of phrase *start* positions (adjacent-term match).
  /// Empty when any term is absent or the phrase never occurs.
  std::vector<Posting> PhrasePostings(const SearchPhrase& phrase) const;

  size_t num_terms() const { return postings_.size(); }
  size_t num_documents() const { return corpus_->size(); }
  const Corpus* corpus() const { return corpus_; }

  /// Document frequency of a term (0 when absent).
  size_t DocumentFrequency(const std::string& term) const;

 private:
  const Corpus* corpus_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
};

}  // namespace wsq

#endif  // WSQ_SEARCH_INVERTED_INDEX_H_
