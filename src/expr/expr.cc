#include "expr/expr.h"

#include <cmath>

#include "common/strings.h"

namespace wsq {

Result<Value> BoundColumnRef::Eval(const Row& row) const {
  if (index_ >= row.size()) {
    return Status::ExecutionError(
        StrFormat("column index %zu out of range (row has %zu values)",
                  index_, row.size()));
  }
  return row.value(index_);
}

Status BoundColumnRef::RemapColumns(const std::vector<int>& mapping) {
  if (index_ >= mapping.size() || mapping[index_] < 0) {
    return Status::Internal("column " + column_.QualifiedName() +
                            " unavailable after plan rewrite");
  }
  index_ = static_cast<size_t>(mapping[index_]);
  return Status::OK();
}

Result<Value> BoundLiteral::Eval(const Row&) const { return value_; }

Result<Value> BoundUnary::Eval(const Row& row) const {
  WSQ_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
  if (v.is_null()) return Value::Null();
  if (v.is_placeholder()) {
    return Status::ExecutionError(
        "operation on incomplete (placeholder) value");
  }
  switch (op_) {
    case UnaryOp::kNeg:
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Real(-v.AsDouble());
      return Status::TypeError("unary '-' requires a numeric operand");
    case UnaryOp::kNot: {
      WSQ_ASSIGN_OR_RETURN(bool b, ValueIsTrue(v));
      return Value::Int(b ? 0 : 1);
    }
  }
  return Status::Internal("unknown unary operator");
}

TypeId BoundUnary::OutputType() const {
  switch (op_) {
    case UnaryOp::kNeg:
      return operand_->OutputType();
    case UnaryOp::kNot:
      return TypeId::kInt64;
  }
  return TypeId::kNull;
}

std::string BoundUnary::ToString() const {
  return std::string(UnaryOpToString(op_)) + "(" + operand_->ToString() +
         ")";
}

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(
        StrFormat("arithmetic '%s' requires numeric operands",
                  std::string(BinaryOpToString(op)).c_str()));
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::ExecutionError("modulo by zero");
        return Value::Int(a % b);
      default:
        break;
    }
  }
  double a = l.NumericAsDouble();
  double b = r.NumericAsDouble();
  switch (op) {
    case BinaryOp::kAdd: return Value::Real(a + b);
    case BinaryOp::kSub: return Value::Real(a - b);
    case BinaryOp::kMul: return Value::Real(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Real(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Value::Real(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("unknown arithmetic operator");
}

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  // Comparing a string with a numeric is almost certainly a query bug.
  if ((l.is_string() && r.is_numeric()) ||
      (l.is_numeric() && r.is_string())) {
    return Status::TypeError("cannot compare STRING with numeric");
  }
  int c = l.Compare(r);
  bool result;
  switch (op) {
    case BinaryOp::kEq: result = c == 0; break;
    case BinaryOp::kNe: result = c != 0; break;
    case BinaryOp::kLt: result = c < 0; break;
    case BinaryOp::kLe: result = c <= 0; break;
    case BinaryOp::kGt: result = c > 0; break;
    case BinaryOp::kGe: result = c >= 0; break;
    default:
      return Status::Internal("unknown comparison operator");
  }
  return Value::Int(result ? 1 : 0);
}

}  // namespace

Result<Value> BoundBinary::Eval(const Row& row) const {
  WSQ_ASSIGN_OR_RETURN(Value l, left_->Eval(row));

  // Short-circuit logic (NULL treated as false).
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    bool lt = false;
    if (!l.is_null()) {
      WSQ_ASSIGN_OR_RETURN(lt, ValueIsTrue(l));
    }
    if (op_ == BinaryOp::kAnd && !lt) return Value::Int(0);
    if (op_ == BinaryOp::kOr && lt) return Value::Int(1);
    WSQ_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
    bool rt = false;
    if (!r.is_null()) {
      WSQ_ASSIGN_OR_RETURN(rt, ValueIsTrue(r));
    }
    return Value::Int(rt ? 1 : 0);
  }

  WSQ_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.is_placeholder() || r.is_placeholder()) {
    return Status::ExecutionError(
        "operation on incomplete (placeholder) value");
  }
  if (op_ == BinaryOp::kLike) {
    if (!l.is_string() || !r.is_string()) {
      return Status::TypeError("LIKE requires STRING operands");
    }
    return Value::Int(LikeMatch(l.AsString(), r.AsString()) ? 1 : 0);
  }
  if (IsComparisonOp(op_)) return EvalComparison(op_, l, r);
  return EvalArithmetic(op_, l, r);
}

TypeId BoundBinary::OutputType() const {
  if (IsComparisonOp(op_) || op_ == BinaryOp::kAnd ||
      op_ == BinaryOp::kOr || op_ == BinaryOp::kLike) {
    return TypeId::kInt64;
  }
  TypeId l = left_->OutputType();
  TypeId r = right_->OutputType();
  if (l == TypeId::kDouble || r == TypeId::kDouble) return TypeId::kDouble;
  if (l == TypeId::kInt64 && r == TypeId::kInt64) return TypeId::kInt64;
  return TypeId::kNull;
}

std::string BoundBinary::ToString() const {
  return "(" + left_->ToString() + " " +
         std::string(BinaryOpToString(op_)) + " " + right_->ToString() +
         ")";
}

std::string_view ScalarFuncToString(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kUpper: return "UPPER";
    case ScalarFunc::kLower: return "LOWER";
    case ScalarFunc::kLength: return "LENGTH";
    case ScalarFunc::kAbs: return "ABS";
  }
  return "?";
}

bool LookupScalarFunc(const std::string& name, ScalarFunc* out) {
  std::string upper = ToUpper(name);
  if (upper == "UPPER") {
    *out = ScalarFunc::kUpper;
  } else if (upper == "LOWER") {
    *out = ScalarFunc::kLower;
  } else if (upper == "LENGTH") {
    *out = ScalarFunc::kLength;
  } else if (upper == "ABS") {
    *out = ScalarFunc::kAbs;
  } else {
    return false;
  }
  return true;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> BoundFunction::Eval(const Row& row) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) {
    WSQ_ASSIGN_OR_RETURN(Value v, a->Eval(row));
    if (v.is_placeholder()) {
      return Status::ExecutionError(
          "function over an incomplete (placeholder) value");
    }
    args.push_back(std::move(v));
  }
  if (args.size() != 1) {
    return Status::TypeError(
        std::string(ScalarFuncToString(func_)) +
        " takes exactly one argument");
  }
  const Value& v = args[0];
  if (v.is_null()) return Value::Null();
  switch (func_) {
    case ScalarFunc::kUpper:
      if (!v.is_string()) {
        return Status::TypeError("UPPER requires a STRING argument");
      }
      return Value::Str(ToUpper(v.AsString()));
    case ScalarFunc::kLower:
      if (!v.is_string()) {
        return Status::TypeError("LOWER requires a STRING argument");
      }
      return Value::Str(ToLower(v.AsString()));
    case ScalarFunc::kLength:
      if (!v.is_string()) {
        return Status::TypeError("LENGTH requires a STRING argument");
      }
      return Value::Int(static_cast<int64_t>(v.AsString().size()));
    case ScalarFunc::kAbs:
      if (v.is_int()) {
        return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
      }
      if (v.is_double()) {
        return Value::Real(v.AsDouble() < 0 ? -v.AsDouble()
                                            : v.AsDouble());
      }
      return Status::TypeError("ABS requires a numeric argument");
  }
  return Status::Internal("unknown scalar function");
}

TypeId BoundFunction::OutputType() const {
  switch (func_) {
    case ScalarFunc::kUpper:
    case ScalarFunc::kLower:
      return TypeId::kString;
    case ScalarFunc::kLength:
      return TypeId::kInt64;
    case ScalarFunc::kAbs:
      return args_.empty() ? TypeId::kNull : args_[0]->OutputType();
  }
  return TypeId::kNull;
}

std::string BoundFunction::ToString() const {
  std::string out(ScalarFuncToString(func_));
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

BoundExprPtr BoundFunction::Clone() const {
  std::vector<BoundExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<BoundFunction>(func_, std::move(args));
}

Result<bool> ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return false;
    case TypeId::kInt64:
      return v.AsInt() != 0;
    case TypeId::kDouble:
      return v.AsDouble() != 0;
    case TypeId::kString:
      return Status::TypeError("STRING is not a valid predicate value");
    case TypeId::kPlaceholder:
      return Status::ExecutionError(
          "predicate on incomplete (placeholder) value");
  }
  return false;
}

Result<bool> EvalPredicate(const BoundExpr& expr, const Row& row) {
  WSQ_ASSIGN_OR_RETURN(Value v, expr.Eval(row));
  if (v.is_null()) return false;
  return ValueIsTrue(v);
}

}  // namespace wsq
