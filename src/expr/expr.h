#ifndef WSQ_EXPR_EXPR_H_
#define WSQ_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "parser/ast.h"
#include "types/row.h"
#include "types/schema.h"

namespace wsq {

/// Expression tree bound to column positions of a concrete row shape.
/// Produced by the binder (plan module) from a ParsedExpr + Schema.
class BoundExpr {
 public:
  enum class Kind { kColumnRef, kLiteral, kUnary, kBinary, kFunction };

  virtual ~BoundExpr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against `row`. Binary/unary operations on placeholder
  /// values fail with ExecutionError — by construction (ReqSync
  /// placement) complete values are always available where needed, so
  /// such a failure indicates a planner bug.
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// Static result type (TypeId::kNull when unknown/variable).
  virtual TypeId OutputType() const = 0;

  /// Rendering using the bound schema's column names.
  virtual std::string ToString() const = 0;

  virtual std::unique_ptr<BoundExpr> Clone() const = 0;

  /// Appends the row indices of every column referenced.
  virtual void CollectColumns(std::vector<size_t>* indices) const = 0;

  /// Rewrites every column index through `mapping` (old index →
  /// new index); used when operators are moved during the asynchronous-
  /// iteration rewrite. `mapping[i] < 0` means column i is unavailable,
  /// which is an error if referenced.
  virtual Status RemapColumns(const std::vector<int>& mapping) = 0;

 protected:
  explicit BoundExpr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

class BoundColumnRef : public BoundExpr {
 public:
  BoundColumnRef(size_t index, Column column)
      : BoundExpr(Kind::kColumnRef),
        index_(index),
        column_(std::move(column)) {}

  size_t index() const { return index_; }
  const Column& column() const { return column_; }

  Result<Value> Eval(const Row& row) const override;
  TypeId OutputType() const override { return column_.type; }
  std::string ToString() const override {
    return column_.QualifiedName();
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundColumnRef>(index_, column_);
  }
  void CollectColumns(std::vector<size_t>* indices) const override {
    indices->push_back(index_);
  }
  Status RemapColumns(const std::vector<int>& mapping) override;

 private:
  size_t index_;
  Column column_;
};

class BoundLiteral : public BoundExpr {
 public:
  explicit BoundLiteral(Value value)
      : BoundExpr(Kind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Value> Eval(const Row& row) const override;
  TypeId OutputType() const override { return value_.type(); }
  std::string ToString() const override { return value_.ToString(); }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundLiteral>(value_);
  }
  void CollectColumns(std::vector<size_t>*) const override {}
  Status RemapColumns(const std::vector<int>&) override {
    return Status::OK();
  }

 private:
  Value value_;
};

class BoundUnary : public BoundExpr {
 public:
  BoundUnary(UnaryOp op, BoundExprPtr operand)
      : BoundExpr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const BoundExpr& operand() const { return *operand_; }

  Result<Value> Eval(const Row& row) const override;
  TypeId OutputType() const override;
  std::string ToString() const override;
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundUnary>(op_, operand_->Clone());
  }
  void CollectColumns(std::vector<size_t>* indices) const override {
    operand_->CollectColumns(indices);
  }
  Status RemapColumns(const std::vector<int>& mapping) override {
    return operand_->RemapColumns(mapping);
  }

 private:
  UnaryOp op_;
  BoundExprPtr operand_;
};

/// Built-in scalar functions.
enum class ScalarFunc { kUpper, kLower, kLength, kAbs };

std::string_view ScalarFuncToString(ScalarFunc f);

/// True (filling `out`) when `name` names a scalar function.
bool LookupScalarFunc(const std::string& name, ScalarFunc* out);

/// SQL LIKE pattern match: '%' = any run, '_' = any single character.
bool LikeMatch(std::string_view text, std::string_view pattern);

class BoundFunction : public BoundExpr {
 public:
  BoundFunction(ScalarFunc func, std::vector<BoundExprPtr> args)
      : BoundExpr(Kind::kFunction),
        func_(func),
        args_(std::move(args)) {}

  ScalarFunc func() const { return func_; }

  Result<Value> Eval(const Row& row) const override;
  TypeId OutputType() const override;
  std::string ToString() const override;
  BoundExprPtr Clone() const override;
  void CollectColumns(std::vector<size_t>* indices) const override {
    for (const auto& a : args_) a->CollectColumns(indices);
  }
  Status RemapColumns(const std::vector<int>& mapping) override {
    for (auto& a : args_) {
      WSQ_RETURN_IF_ERROR(a->RemapColumns(mapping));
    }
    return Status::OK();
  }

 private:
  ScalarFunc func_;
  std::vector<BoundExprPtr> args_;
};

class BoundBinary : public BoundExpr {
 public:
  BoundBinary(BinaryOp op, BoundExprPtr left, BoundExprPtr right)
      : BoundExpr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const BoundExpr& left() const { return *left_; }
  const BoundExpr& right() const { return *right_; }

  Result<Value> Eval(const Row& row) const override;
  TypeId OutputType() const override;
  std::string ToString() const override;
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundBinary>(op_, left_->Clone(),
                                         right_->Clone());
  }
  void CollectColumns(std::vector<size_t>* indices) const override {
    left_->CollectColumns(indices);
    right_->CollectColumns(indices);
  }
  Status RemapColumns(const std::vector<int>& mapping) override {
    WSQ_RETURN_IF_ERROR(left_->RemapColumns(mapping));
    return right_->RemapColumns(mapping);
  }

 private:
  BinaryOp op_;
  BoundExprPtr left_;
  BoundExprPtr right_;
};

/// SQL truthiness: non-zero numerics are true; NULL and placeholders are
/// not true. Strings are not valid predicates (TypeError).
Result<bool> ValueIsTrue(const Value& v);

/// Evaluates `expr` as a predicate over `row`; NULL results are false.
Result<bool> EvalPredicate(const BoundExpr& expr, const Row& row);

}  // namespace wsq

#endif  // WSQ_EXPR_EXPR_H_
