// The paper's six example WSQ queries (§3.1), run end-to-end against
// the synthetic Web with asynchronous iteration.

#include <cstdio>

#include "wsq/demo.h"

namespace {

void RunQuery(wsq::DemoEnv& env, const char* title, const char* sql,
              size_t max_rows) {
  std::printf("=== %s\n%s\n\n", title, sql);
  auto r = env.Run(sql);
  if (!r.ok()) {
    std::printf("error: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%s", r->result.ToString(max_rows).c_str());
  std::printf("(%zu rows, %.3fs, %llu Web searches)\n\n",
              r->result.rows.size(), r->stats.elapsed_micros * 1e-6,
              (unsigned long long)r->stats.external_calls);
}

}  // namespace

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 8000;
  options.latency = wsq::LatencyModel{25000, 8000, 0.0, 1.0};
  wsq::DemoEnv env(options);

  RunQuery(env, "Query 1: rank states by Web mentions",
           "Select Name, Count From States, WebCount "
           "Where Name = T1 Order By Count Desc",
           5);

  RunQuery(env,
           "Query 2: mentions per million residents "
           "(1998 Census populations)",
           "Select Name, Count * 1000000 / Population As C "
           "From States, WebCount Where Name = T1 Order By C Desc",
           5);

  RunQuery(env, "Query 3: states near 'four corners'",
           "Select Name, Count From States, WebCount "
           "Where Name = T1 and T2 = 'four corners' "
           "Order By Count Desc",
           5);

  RunQuery(env, "Query 4: capitals more popular than their states",
           "Select Capital, C.Count, Name, S.Count "
           "From States, WebCount C, WebCount S "
           "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count "
           "Order By Capital",
           10);

  RunQuery(env, "Query 5: top two URLs per state",
           "Select Name, URL, Rank From States, WebPages "
           "Where Name = T1 and Rank <= 2 Order By Name, Rank",
           6);

  RunQuery(env, "Query 6: URLs both engines place in their top 5",
           "Select Name, AV.URL From States, WebPages_AV AV, "
           "WebPages_Google G "
           "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 5 and "
           "G.Rank <= 5 and AV.URL = G.URL Order By Name",
           10);

  // Bonus: what the engine actually executes for Query 1.
  auto plan = env.db().ExplainSelect(
      "Select Name, Count From States, WebCount "
      "Where Name = T1 Order By Count Desc",
      /*async=*/true);
  if (plan.ok()) {
    std::printf("=== Query 1 asynchronous plan\n%s\n", plan->c_str());
  }
  return 0;
}
