// An interactive WSQ shell — the reproduction of the paper's "simple
// interface that allows users to pose limited queries over our WSQ
// implementation" (§5, http://www-db.stanford.edu/wsq back in 2000).
//
// Reads SQL from stdin (interactive or piped), executes against the
// demo environment, and prints result tables with per-query stats.
//
//   \help              command list
//   \tables            stored and virtual tables
//   \sync | \async     switch execution strategy (default async)
//   \plan <select>     show the plan without executing
//   \analyze <select>  EXPLAIN ANALYZE: run + profiled plan tree
//   \trace <select>    run + per-query trace spans
//   \metrics           Prometheus dump of the metrics registry
//   \latency <ms>      report the configured latency
//   \shards            sharded-backend status / partial-result policy
//   \quit
//
// Example session:
//   wsq> SELECT Name, Count FROM States, WebCount WHERE Name = T1
//        ORDER BY Count DESC LIMIT 5;

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/cancellation.h"
#include "common/strings.h"
#include "dsq/dsq_engine.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "wsq/demo.h"

namespace {

constexpr int kLatencyMs = 25;

// Token of the query currently executing, for the SIGINT handler.
// CancellationToken::Cancel is a plain atomic store, so calling it
// from a signal handler is safe.
std::atomic<wsq::CancellationToken*> g_active_token{nullptr};

void HandleSigint(int) {
  wsq::CancellationToken* token = g_active_token.load();
  if (token != nullptr) {
    token->Cancel();  // the shell prints "query cancelled" and goes on
  } else {
    _exit(130);  // idle at the prompt: behave like an uncaught Ctrl-C
  }
}

void PrintHelp() {
  std::printf(
      "Commands:\n"
      "  \\help                this text\n"
      "  \\tables              list stored and virtual tables\n"
      "  \\sync / \\async       choose execution strategy\n"
      "  \\plan <select...>    EXPLAIN the (async) plan\n"
      "  \\analyze <select...> run the query, print the profiled plan\n"
      "                       (rows, calls, self time, blocked time)\n"
      "  \\trace <select...>   run the query, print its trace spans\n"
      "  \\metrics             dump the metrics registry (Prometheus)\n"
      "  \\dsq <phrase>        DSQ: explain a phrase with DB terms\n"
      "  \\latency             show simulated search latency\n"
      "  \\shards              sharded AltaVista backend status\n"
      "  \\shards fail         fail queries unless every shard answers\n"
      "  \\shards quorum <k>   accept k-of-N shards (partial counts)\n"
      "  \\shards best-effort  accept whatever shards answer\n"
      "  \\deadline <ms>       per-query deadline (0 = none)\n"
      "  \\memory              memory governor status (budgets, spill)\n"
      "  \\budget <mb>         per-query memory budget (0 = none)\n"
      "  \\statusz             live status report (breakers, admission,\n"
      "                       memory tree, in-flight calls, shards)\n"
      "  \\statusz json        the same report as JSON\n"
      "  \\postmortem last     most recent degraded/failed-query record\n"
      "  \\cancel              cancel the next statement (Ctrl-C\n"
      "                       cancels the one currently running)\n"
      "  \\quit                exit\n"
      "Anything else is executed as SQL (';' optional; statements may\n"
      "span lines until a ';').\n");
}

void PrintTables(wsq::DemoEnv& env) {
  std::printf("stored tables:\n");
  for (const std::string& name : env.db().catalog()->ListTables()) {
    auto table = env.db().catalog()->GetTable(name);
    std::printf("  %-12s %s\n", name.c_str(),
                (*table)->schema().ToString().c_str());
  }
  std::printf("virtual tables:\n");
  for (const std::string& name : env.db().vtables()->List()) {
    std::printf("  %s\n", name.c_str());
  }
}

void PrintShards(wsq::DemoEnv& env, const wsq::ShardOptions& shard) {
  wsq::SimulatedShardCluster* cluster = env.shard_cluster();
  if (cluster == nullptr) {
    std::printf("sharding disabled (set WSQ_SHELL_SHARDS=N)\n");
    return;
  }
  wsq::ShardedSearchService* svc = cluster->service();
  std::printf("AltaVista backend: %zu shards, policy %s",
              cluster->num_shards(),
              wsq::ShardPolicyToString(shard.policy));
  if (shard.policy == wsq::ShardPolicy::kQuorum) {
    std::printf(" (min %d)", shard.min_shards);
  }
  std::printf("\n");
  std::vector<bool> health = svc->shard_health();
  for (size_t i = 0; i < health.size(); ++i) {
    std::printf(
        "  shard %zu: %s, breaker %s\n", i,
        health[i] ? "healthy" : "failing",
        std::string(wsq::CircuitStateToString(
                        cluster->breaker(i)->breaker()->state()))
            .c_str());
  }
  wsq::ShardedServiceStats stats = svc->stats();
  std::printf(
      "  fanouts=%llu coalesced=%llu shard_calls=%llu hedges=%llu "
      "hedge_wins=%llu\n  complete=%llu partial=%llu "
      "quorum_failures=%llu degraded_shards=%llu\n",
      (unsigned long long)stats.fanouts,
      (unsigned long long)stats.coalesced,
      (unsigned long long)stats.shard_calls,
      (unsigned long long)stats.hedges,
      (unsigned long long)stats.hedge_wins,
      (unsigned long long)stats.complete_results,
      (unsigned long long)stats.partial_results,
      (unsigned long long)stats.quorum_failures,
      (unsigned long long)stats.degraded_shards);
}

void PrintBudget(const char* label, wsq::MemoryBudget* budget) {
  if (budget->limit() == 0) {
    std::printf("  %-8s used=%zu peak=%zu (unlimited)\n", label,
                budget->used(), budget->peak_used());
  } else {
    std::printf("  %-8s used=%zu peak=%zu limit=%zu\n", label,
                budget->used(), budget->peak_used(), budget->limit());
  }
  wsq::MemoryBudgetStats s = budget->stats();
  if (s.reserve_failures > 0 || s.forced_overages > 0 ||
      s.pressure_invocations > 0) {
    std::printf(
        "           reserve_failures=%llu pressure_runs=%llu "
        "pressure_released=%llu forced_overages=%llu\n",
        (unsigned long long)s.reserve_failures,
        (unsigned long long)s.pressure_invocations,
        (unsigned long long)s.pressure_released_bytes,
        (unsigned long long)s.forced_overages);
  }
}

void PrintMemory(wsq::DemoEnv& env, size_t query_budget_mb) {
  std::printf("memory budgets (bytes):\n");
  PrintBudget("process", wsq::MemoryBudget::Process());
  PrintBudget("db", env.db().memory_budget());
  if (query_budget_mb > 0) {
    std::printf("  per-query budget: %zu MB\n", query_budget_mb);
  } else {
    std::printf("  per-query budget: none\n");
  }
  if (wsq::SpillManager* spill = env.db().spill()) {
    wsq::SpillStats s = spill->stats();
    std::printf(
        "spill: files=%llu (active %zu) runs=%llu written=%llu read=%llu\n",
        (unsigned long long)s.files_created, spill->active_files(),
        (unsigned long long)s.runs_written,
        (unsigned long long)s.bytes_written,
        (unsigned long long)s.bytes_read);
  } else {
    std::printf("spill: disabled\n");
  }
  if (wsq::ResultCache* cache = env.client_cache()) {
    std::printf("result cache: %zu entries, %zu bytes\n", cache->size(),
                cache->bytes());
  }
}

}  // namespace

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 8000;
  options.latency = wsq::LatencyModel{kLatencyMs * 1000,
                                      kLatencyMs * 300, 0.0, 1.0};
  // The AltaVista backend runs sharded by default (WSQ_SHELL_SHARDS=0
  // restores the paper's single-server setup). Results are identical
  // either way; \shards and ExecOptions-level policies become live.
  options.search_shards = 4;
  if (const char* shards_env = std::getenv("WSQ_SHELL_SHARDS")) {
    long n = std::atol(shards_env);
    options.search_shards = n < 0 ? 0 : static_cast<size_t>(n);
  }
  // Database-wide memory budget in MB (0 = unlimited, the default).
  if (const char* mem_env = std::getenv("WSQ_SHELL_MEMORY_MB")) {
    long mb = std::atol(mem_env);
    if (mb > 0) {
      options.memory_budget_bytes = static_cast<size_t>(mb) << 20;
    }
  }
  wsq::DemoEnv env(options);

  wsq::ShardOptions shard;
  bool async = true;
  size_t query_budget_mb = 0;
  int64_t deadline_ms = 0;
  bool cancel_next = false;
  wsq::CancellationToken token;
  std::signal(SIGINT, HandleSigint);
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("WSQ/DSQ shell — simulated Web (%zu pages, %d ms "
                "search latency).\nType \\help for commands.\n",
                env.corpus().size(), kLatencyMs);
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf(buffer.empty() ? "wsq> " : "...> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(wsq::Trim(line));
    if (trimmed.empty()) continue;

    // Meta commands act immediately.
    if (trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\help") {
        PrintHelp();
      } else if (trimmed == "\\tables") {
        PrintTables(env);
      } else if (trimmed == "\\sync") {
        async = false;
        std::printf("execution: sequential\n");
      } else if (trimmed == "\\async") {
        async = true;
        std::printf("execution: asynchronous iteration\n");
      } else if (trimmed == "\\latency") {
        std::printf("simulated search latency: %d ms\n", kLatencyMs);
      } else if (trimmed == "\\shards") {
        PrintShards(env, shard);
      } else if (trimmed == "\\shards fail") {
        shard.policy = wsq::ShardPolicy::kFail;
        std::printf("shard policy: fail unless all shards answer\n");
      } else if (wsq::StartsWith(trimmed, "\\shards quorum")) {
        shard.policy = wsq::ShardPolicy::kQuorum;
        shard.min_shards = std::atoi(trimmed.substr(14).c_str());
        if (shard.min_shards > 0) {
          std::printf("shard policy: quorum, min %d shard(s)\n",
                      shard.min_shards);
        } else {
          std::printf("shard policy: quorum, min = all shards\n");
        }
      } else if (trimmed == "\\shards best-effort") {
        shard.policy = wsq::ShardPolicy::kBestEffort;
        std::printf("shard policy: best-effort\n");
      } else if (wsq::StartsWith(trimmed, "\\deadline ")) {
        deadline_ms = std::atoll(trimmed.substr(10).c_str());
        if (deadline_ms < 0) deadline_ms = 0;
        if (deadline_ms > 0) {
          std::printf("query deadline: %lld ms\n",
                      (long long)deadline_ms);
        } else {
          std::printf("query deadline: none\n");
        }
      } else if (trimmed == "\\memory") {
        PrintMemory(env, query_budget_mb);
      } else if (trimmed == "\\statusz") {
        std::printf(
            "%s", wsq::StatuszRegistry::Global()->Render().ToText().c_str());
      } else if (trimmed == "\\statusz json") {
        std::printf(
            "%s\n",
            wsq::StatuszRegistry::Global()->Render().ToJson().c_str());
      } else if (trimmed == "\\postmortem last" ||
                 trimmed == "\\postmortem") {
        auto last = env.db().postmortems()->last();
        if (last == nullptr) {
          std::printf("no postmortems recorded\n");
        } else {
          std::printf("%s\n", last->ToText().c_str());
        }
      } else if (wsq::StartsWith(trimmed, "\\budget ")) {
        long mb = std::atol(trimmed.substr(8).c_str());
        query_budget_mb = mb < 0 ? 0 : static_cast<size_t>(mb);
        if (query_budget_mb > 0) {
          std::printf("per-query memory budget: %zu MB\n",
                      query_budget_mb);
        } else {
          std::printf("per-query memory budget: none\n");
        }
      } else if (trimmed == "\\cancel") {
        cancel_next = true;
        std::printf("next statement will be cancelled\n");
      } else if (wsq::StartsWith(trimmed, "\\dsq ")) {
        wsq::DsqEngine dsq(&env.db(), &env.altavista_service());
        auto r = dsq.Explain(trimmed.substr(5),
                             {"States.Name", "Movies.Title",
                              "Sigs.Name"});
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
        } else {
          std::printf("database terms near \"%s\" "
                      "(%llu concurrent searches):\n",
                      r->phrase.c_str(),
                      (unsigned long long)r->external_calls);
          for (const auto& t : r->terms) {
            std::printf("  %-24s %-14s %lld pages\n", t.term.c_str(),
                        t.source.c_str(), (long long)t.count);
          }
          if (r->terms.empty()) std::printf("  (no correlations)\n");
        }
      } else if (trimmed == "\\metrics") {
        std::printf(
            "%s",
            wsq::MetricsRegistry::Global()->ExportPrometheusText()
                .c_str());
      } else if (wsq::StartsWith(trimmed, "\\analyze ") ||
                 wsq::StartsWith(trimmed, "\\trace ")) {
        bool want_trace = wsq::StartsWith(trimmed, "\\trace ");
        std::string sql = trimmed.substr(want_trace ? 7 : 9);
        wsq::WsqDatabase::ExecOptions exec_options;
        exec_options.async_iteration = async;
        exec_options.analyze = !want_trace;
        exec_options.trace = want_trace;
        exec_options.deadline_micros = deadline_ms * 1000;
        exec_options.shard = shard;
        auto r = env.db().Execute(
            want_trace ? sql : "EXPLAIN ANALYZE " +
                                   std::string(async ? "ASYNC " : "SYNC ") +
                                   sql,
            exec_options);
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
        } else if (want_trace && r->trace.has_value()) {
          std::printf("%s", r->trace->ToString().c_str());
          std::printf("(%zu rows, %.3fs, %llu Web searches)\n",
                      r->result.rows.size(),
                      r->stats.elapsed_micros * 1e-6,
                      (unsigned long long)r->stats.external_calls);
        } else if (!r->result.rows.empty() &&
                   !r->result.rows[0].empty() &&
                   r->result.rows[0].value(0).is_string()) {
          std::printf("%s", r->result.rows[0].value(0)
                                .AsString().c_str());
        }
      } else if (wsq::StartsWith(trimmed, "\\plan ")) {
        auto plan = env.db().ExplainSelect(trimmed.substr(6), async);
        if (plan.ok()) {
          std::printf("%s", plan->c_str());
        } else {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        }
      } else {
        std::printf("unknown command (try \\help)\n");
      }
      continue;
    }

    // Accumulate SQL until a terminating ';' (or EOF flushes).
    if (!buffer.empty()) buffer += " ";
    buffer += trimmed;
    if (buffer.back() != ';') continue;

    std::string sql = buffer;
    buffer.clear();

    wsq::WsqDatabase::ExecOptions exec_options;
    exec_options.async_iteration = async;
    exec_options.cancel = &token;
    exec_options.deadline_micros = deadline_ms * 1000;
    exec_options.shard = shard;
    exec_options.memory_budget_bytes = query_budget_mb << 20;
    token.Reset();
    if (cancel_next) {
      token.Cancel();
      cancel_next = false;
    }
    g_active_token.store(&token);
    auto r = env.db().Execute(sql, exec_options);
    g_active_token.store(nullptr);
    if (!r.ok()) {
      if (r.status().code() == wsq::StatusCode::kCancelled) {
        std::printf("query cancelled\n");
      } else if (r.status().code() ==
                 wsq::StatusCode::kDeadlineExceeded) {
        std::printf("deadline exceeded (%lld ms budget)\n",
                    (long long)deadline_ms);
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
      continue;
    }
    std::printf("%s", r->result.ToString(40).c_str());
    std::printf("(%zu rows, %.3fs, %llu Web searches, %s)\n",
                r->result.rows.size(), r->stats.elapsed_micros * 1e-6,
                (unsigned long long)r->stats.external_calls,
                async ? "async" : "sync");
    if (r->stats.partial_results > 0) {
      std::printf(
          "warning: %llu search(es) answered from a subset of shards "
          "(%llu shard answers missing); counts are lower bounds\n",
          (unsigned long long)r->stats.partial_results,
          (unsigned long long)r->stats.degraded_shards);
    }
    if (r->stats.spilled_bytes > 0 ||
        r->stats.pressure_released_bytes > 0) {
      // Mirror of the partial-result warning for the memory governor:
      // the answer is complete, but the query ran degraded.
      std::printf(
          "note: memory budget pressure — %llu bytes spilled to disk "
          "(%llu runs), %llu cached bytes shed; peak tracked %llu\n",
          (unsigned long long)r->stats.spilled_bytes,
          (unsigned long long)r->stats.spill_runs,
          (unsigned long long)r->stats.pressure_released_bytes,
          (unsigned long long)r->stats.peak_memory_bytes);
    }
  }

  // Flush an unterminated trailing statement (piped input).
  if (!buffer.empty()) {
    auto r = env.Run(buffer, async);
    if (r.ok()) {
      std::printf("%s(%zu rows)\n", r->result.ToString(40).c_str(),
                  r->result.rows.size());
    } else {
      std::printf("error: %s\n", r.status().ToString().c_str());
    }
  }
  return 0;
}
