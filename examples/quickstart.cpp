// Quickstart: build a WSQ database, register a (simulated) search
// engine, and run a combined database/Web query with asynchronous
// iteration.
//
// This is the smallest end-to-end use of the library. The DemoEnv
// helper used by the other examples wraps exactly these steps.

#include <cstdio>

#include "data/datasets.h"
#include "net/simulated_service.h"
#include "search/search_engine.h"
#include "wsq/database.h"

int main() {
  using namespace wsq;

  // 1. A synthetic Web and a search engine over it. (With a live
  //    engine you would implement SearchService against its API; see
  //    DESIGN.md §2 for why the simulation preserves the behaviour WSQ
  //    depends on.)
  CorpusConfig corpus_cfg = DefaultPaperCorpusConfig();
  corpus_cfg.num_documents = 5000;
  Corpus corpus = MakePaperCorpus(corpus_cfg);

  SearchEngineConfig engine_cfg;
  engine_cfg.name = "AltaVista";
  SearchEngine engine(&corpus, engine_cfg);

  SimulatedSearchService::Options svc_opts;
  svc_opts.latency = LatencyModel::Fixed(30000);  // 30 ms per request
  SimulatedSearchService service(&engine, svc_opts);

  // 2. The database: catalog + SQL + iterator executor + ReqPump.
  WsqDatabase db;
  Status s = db.RegisterSearchEngine("AV", &service,
                                     /*supports_near=*/true);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 3. A stored table.
  if (!db.Execute("CREATE TABLE States (Name STRING, Population INT, "
                  "Capital STRING)")
           .ok()) {
    return 1;
  }
  for (const StateRecord& st : UsStates1998()) {
    auto table = db.catalog()->GetTable("States");
    if (!(*table)
             ->Insert(Row({Value::Str(st.name), Value::Int(st.population),
                           Value::Str(st.capital)}))
             .ok()) {
      return 1;
    }
  }

  // 4. Paper Query 1: rank states by Web mentions. The WebCount virtual
  //    table issues one search per state; asynchronous iteration runs
  //    all 50 concurrently.
  const char* sql =
      "Select Name, Count From States, WebCount "
      "Where Name = T1 Order By Count Desc";

  auto async = db.Execute(sql);
  if (!async.ok()) {
    std::fprintf(stderr, "%s\n", async.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", async->result.ToString(10).c_str());
  std::printf("asynchronous: %.2fs (%llu external calls)\n",
              async->stats.elapsed_micros * 1e-6,
              (unsigned long long)async->stats.external_calls);

  WsqDatabase::ExecOptions sequential;
  sequential.async_iteration = false;
  auto sync = db.Execute(sql, sequential);
  if (!sync.ok()) return 1;
  std::printf("sequential:   %.2fs\n", sync->stats.elapsed_micros * 1e-6);
  std::printf("improvement:  %.1fx\n",
              static_cast<double>(sync->stats.elapsed_micros) /
                  static_cast<double>(async->stats.elapsed_micros));
  return 0;
}
