// DSQ (Database-Supported Web Queries, paper §1): explain a Web search
// phrase using the database. "When a DSQ user searches for 'scuba
// diving', DSQ uses the Web to correlate that phrase with terms in the
// known database" — here the States and Movies tables.

#include <cstdio>

#include "dsq/dsq_engine.h"
#include "wsq/demo.h"

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 8000;
  options.latency = wsq::LatencyModel{20000, 5000, 0.0, 1.0};
  wsq::DemoEnv env(options);

  wsq::DsqEngine dsq(&env.db(), &env.altavista_service());

  wsq::DsqEngine::Options opt;
  opt.top_k = 8;
  opt.include_pairs = true;
  opt.pair_seed_terms = 3;

  auto r = dsq.Explain("scuba diving", {"States.Name", "Movies.Title"},
                       opt);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("phrase: \"%s\"  (%llu concurrent Web searches)\n\n",
              r->phrase.c_str(), (unsigned long long)r->external_calls);

  std::printf("database terms appearing near the phrase:\n");
  for (const auto& t : r->terms) {
    std::printf("  %-24s %-14s %lld pages\n", t.term.c_str(),
                t.source.c_str(), (long long)t.count);
  }

  std::printf("\nstate/movie pairs near the phrase (the paper's "
              "\"underwater thriller filmed in Florida\"):\n");
  for (const auto& p : r->pairs) {
    std::printf("  %-16s + %-20s %lld pages\n", p.term_a.c_str(),
                p.term_b.c_str(), (long long)p.count);
  }

  // A second phrase showing a different correlation profile.
  auto knuth = dsq.Explain("Knuth", {"Sigs.Name"});
  if (knuth.ok()) {
    std::printf("\nphrase: \"Knuth\" vs ACM Sigs:\n");
    for (const auto& t : knuth->terms) {
      std::printf("  %-12s %lld pages\n", t.term.c_str(),
                  (long long)t.count);
    }
  }
  return 0;
}
