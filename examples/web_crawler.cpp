// The paper's §4.2 second scenario: "asynchronous iteration could be
// used to implement a Web crawler: given a table of thousands of URLs,
// a query over that table could be used to fetch the HTML for each URL".
//
// This example defines a custom FetchPage virtual table over the
// synthetic Web — demonstrating that the VirtualTable interface is open
// to user-defined external sources, not just search engines — and
// crawls a URL frontier with one SQL query.

#include <cstdio>
#include <map>
#include <thread>

#include "common/strings.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

/// FetchPage(SearchExp, T1=url, Words, FirstTerms, FetchedDate): fetch
/// one page by URL. SearchExp is unused but keeps the standard virtual
/// table input convention.
class FetchPageTable : public VirtualTable {
 public:
  FetchPageTable(const Corpus* corpus, int64_t latency_micros)
      : corpus_(corpus), latency_micros_(latency_micros) {
    for (const Document& d : corpus->documents()) {
      by_url_[d.url] = &d;
    }
  }

  const std::string& name() const override { return name_; }
  const std::string& destination() const override { return dest_; }

  Schema SchemaForTerms(size_t n) const override {
    Schema s;
    s.AddColumn(Column("SearchExp", TypeId::kString, name_));
    for (size_t i = 1; i <= n; ++i) {
      s.AddColumn(Column("T" + std::to_string(i), TypeId::kString,
                         name_));
    }
    s.AddColumn(Column("Words", TypeId::kInt64, name_));
    s.AddColumn(Column("FirstTerms", TypeId::kString, name_));
    s.AddColumn(Column("FetchedDate", TypeId::kString, name_));
    return s;
  }

  size_t NumOutputColumns() const override { return 3; }
  bool SingleRowOutput() const override { return false; }  // 404 -> 0 rows
  std::string EffectiveSearchExp(const VTableRequest&) const override {
    return "fetch %1";
  }

  Result<std::vector<Row>> Fetch(const VTableRequest& request) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds(latency_micros_));
    std::vector<Row> rows;
    Row outputs = FetchOutputs(request);
    if (outputs.empty()) return rows;  // unknown URL: no tuple
    Row row;
    row.Append(Value::Str(EffectiveSearchExp(request)));
    for (const std::string& t : request.terms) {
      row.Append(Value::Str(t));
    }
    for (const Value& v : outputs.values()) row.Append(v);
    rows.push_back(std::move(row));
    return rows;
  }

  using VirtualTable::SubmitAsync;
  CallId SubmitAsync(const VTableRequest& request, ReqPump* pump,
                     int64_t timeout_micros) override {
    Row outputs = FetchOutputs(request);
    int64_t latency = latency_micros_;
    AsyncCallFn fn = [outputs = std::move(outputs), latency](
                         CallCompletion done) mutable {
      std::thread([outputs = std::move(outputs), latency,
                   done = std::move(done)]() mutable {
        std::this_thread::sleep_for(
            std::chrono::microseconds(latency));
        CallResult result;
        if (!outputs.empty()) {
          result.rows.push_back(std::move(outputs));
        }
        done(std::move(result));
      }).detach();
    };
    return timeout_micros > 0
               ? pump->Register(dest_, std::move(fn), timeout_micros)
               : pump->Register(dest_, std::move(fn));
  }

 private:
  /// Output column values for the requested URL; empty row if 404.
  Row FetchOutputs(const VTableRequest& request) const {
    if (request.terms.empty()) return Row();
    auto it = by_url_.find(request.terms[0]);
    if (it == by_url_.end()) return Row();
    const Document& d = *it->second;
    std::string first;
    for (size_t i = 0; i < 3 && i < d.terms.size(); ++i) {
      if (i > 0) first += " ";
      first += d.terms[i];
    }
    return Row({Value::Int(static_cast<int64_t>(d.terms.size())),
                Value::Str(first), Value::Str(d.date)});
  }

  const Corpus* corpus_;
  int64_t latency_micros_;
  std::string name_ = "FetchPage";
  std::string dest_ = "crawler";
  std::map<std::string, const Document*> by_url_;
};

}  // namespace
}  // namespace wsq

int main() {
  using namespace wsq;

  DemoOptions options;
  options.corpus.num_documents = 6000;
  options.latency = LatencyModel{15000, 5000, 0.0, 1.0};
  DemoEnv env(options);

  // Register the crawler's virtual table alongside the search tables.
  Status s = env.db().vtables()->Register(
      std::make_unique<FetchPageTable>(&env.corpus(), 15000));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Build the frontier: top URLs for every state (one WSQ query).
  if (!env.db().Execute("CREATE TABLE Frontier (Url STRING)").ok()) {
    return 1;
  }
  auto seeds = env.Run(
      "Select URL From States, WebPages Where Name = T1 and Rank <= 3");
  if (!seeds.ok()) return 1;
  TableInfo* frontier = *env.db().catalog()->GetTable("Frontier");
  for (const Row& row : seeds->result.rows) {
    (void)frontier->Insert(Row({row.value(0)}));
  }
  std::printf("frontier: %zu URLs (top 3 per state)\n",
              seeds->result.rows.size());

  // Crawl: one dependent join = one fetch per URL, all concurrent.
  const char* crawl =
      "Select T1, Words, FirstTerms, FetchedDate "
      "From Frontier, FetchPage Where Url = T1 Order By Words Desc";

  auto async = env.Run(crawl, /*async_iteration=*/true);
  if (!async.ok()) {
    std::fprintf(stderr, "%s\n", async.status().ToString().c_str());
    return 1;
  }
  auto sync = env.Run(crawl, /*async_iteration=*/false);
  if (!sync.ok()) return 1;

  std::printf("%s\n", async->result.ToString(8).c_str());
  std::printf("crawled %zu pages\n", async->result.rows.size());
  std::printf("sequential crawl: %6.3fs\n",
              sync->stats.elapsed_micros * 1e-6);
  std::printf("async crawl:      %6.3fs (%.1fx)\n",
              async->stats.elapsed_micros * 1e-6,
              static_cast<double>(sync->stats.elapsed_micros) /
                  static_cast<double>(async->stats.elapsed_micros));
  return 0;
}
