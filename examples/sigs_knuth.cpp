// The paper's §4.1 running example: rank the 37 ACM Sigs by how often
// they appear on the Web near "Knuth" — with a look at how asynchronous
// iteration transforms and executes the plan.

#include <cstdio>

#include "wsq/demo.h"

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 8000;
  options.latency = wsq::LatencyModel{30000, 10000, 0.0, 1.0};
  wsq::DemoEnv env(options);

  const char* sql =
      "Select Name, Count From Sigs, WebCount "
      "Where Name = T1 and T2 = 'Knuth' Order By Count Desc";

  // The two plans (paper Figures 2 and 3).
  auto sync_plan = env.db().ExplainSelect(sql, /*async=*/false);
  auto async_plan = env.db().ExplainSelect(sql, /*async=*/true);
  if (sync_plan.ok() && async_plan.ok()) {
    std::printf("--- sequential plan (Figure 2)\n%s\n", sync_plan->c_str());
    std::printf("--- asynchronous plan (Figure 3)\n%s\n",
                async_plan->c_str());
  }

  // Sequential execution: 37 searches, one at a time.
  auto sync = env.Run(sql, /*async_iteration=*/false);
  if (!sync.ok()) {
    std::fprintf(stderr, "%s\n", sync.status().ToString().c_str());
    return 1;
  }

  // Asynchronous iteration: all 37 searches in flight together.
  auto async = env.Run(sql, /*async_iteration=*/true);
  if (!async.ok()) {
    std::fprintf(stderr, "%s\n", async.status().ToString().c_str());
    return 1;
  }

  std::printf("--- results (Sigs near 'Knuth')\n%s\n",
              async->result.ToString(8).c_str());
  std::printf("sequential:  %6.3fs for %llu searches\n",
              sync->stats.elapsed_micros * 1e-6,
              (unsigned long long)sync->stats.external_calls);
  std::printf("async:       %6.3fs for %llu searches\n",
              async->stats.elapsed_micros * 1e-6,
              (unsigned long long)async->stats.external_calls);
  std::printf("improvement: %6.1fx\n",
              static_cast<double>(sync->stats.elapsed_micros) /
                  static_cast<double>(async->stats.elapsed_micros));

  // The top-3 URLs variant (paper Figure 4 / §4.3) — WebPages calls
  // can cancel or proliferate tuples.
  const char* pages_sql =
      "Select Name, URL, Rank From Sigs, WebPages "
      "Where Name = T1 and Rank <= 3 Order By Name, Rank";
  auto pages = env.Run(pages_sql);
  if (pages.ok()) {
    std::printf("\n--- top 3 URLs per Sig (first rows)\n%s",
                pages->result.ToString(9).c_str());
    std::printf("(%zu tuples from 37 provisional tuples after "
                "cancellation/proliferation)\n",
                pages->result.rows.size());
  }
  return 0;
}
