// Observability tax: the same workload run in five modes —
//
//   all_off        registry kill switch on (metrics + recorder off)
//   recorder_off   metrics on, flight recorder gated off
//   default        production mode: metrics AND recorder on,
//                  profiling/tracing off
//   analyze        EXPLAIN ANALYZE operator profiling
//   trace          full span tracing
//
// The DESIGN.md §16 budget is: `default` — with the always-on flight
// recorder — within 2% of `all_off` (instrumentation with tracing off
// must be near-free; profiling and tracing may cost more, which is why
// they are per-query opt-ins). `recorder_off` isolates the recorder's
// own share of that tax.
//
// Emits BENCH_obs.json (run from the repo root). With --check, exits
// non-zero when the default-mode overhead exceeds the budget (the CI
// observability job). The gated number is the median of per-pair
// deltas over many back-to-back off/default pairs, which cancels
// machine drift and is stable enough to gate on; the reported micros
// are min-of-pairs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "wsq/demo.h"

namespace {

constexpr int kBulkRows = 4000;
constexpr int kIters = 25;
// The off-vs-default gap is a handful of atomic operations per query,
// far below scheduler noise on any one batch. Each pair runs the two
// modes back-to-back (order swapped every other pair, so neither mode
// systematically inherits a warmer cache), and the gate uses the
// MEDIAN of the per-pair deltas: a scheduler hiccup corrupts one pair,
// not the median of sixteen.
constexpr int kPairs = 16;
constexpr int kRepeats = 3;  // for the non-gated modes
constexpr double kBudgetPct = 2.0;

// Local-only query: sorts and filters thousands of rows with no
// external calls, so every microsecond of difference is operator
// wrapper / registry / recorder cost, not network simulation.
const char* kQuery =
    "SELECT Name, Val FROM Bulk WHERE Val % 7 <> 0 "
    "ORDER BY Val DESC LIMIT 25";

int64_t RunBatch(wsq::DemoEnv& env,
                 const wsq::WsqDatabase::ExecOptions& options) {
  wsq::Stopwatch timer;
  for (int i = 0; i < kIters; ++i) {
    auto r = env.db().Execute(kQuery, options);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(2);
    }
  }
  return timer.ElapsedMicros();
}

double OverheadPct(int64_t base, int64_t mode) {
  return base == 0
             ? 0.0
             : (static_cast<double>(mode) - static_cast<double>(base)) /
                   static_cast<double>(base) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

  wsq::DemoOptions demo;
  demo.corpus.num_documents = 200;  // corpus unused by the local query
  demo.latency = wsq::LatencyModel::Instant();
  // Keep the bench's own bad endings (there are none — but belt and
  // braces) out of stderr.
  demo.postmortem_sink = [](const wsq::PostmortemRecord&) {};
  wsq::DemoEnv env(demo);

  auto created =
      env.db().Execute("CREATE TABLE Bulk (Id INT, Val INT, Name STRING)");
  if (!created.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 created.status().ToString().c_str());
    return 2;
  }
  for (int base = 0; base < kBulkRows; base += 100) {
    std::string insert = "INSERT INTO Bulk VALUES ";
    for (int i = 0; i < 100; ++i) {
      int id = base + i;
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(id) + ", " +
                std::to_string((id * 2654435761u) % 100000) + ", 'row" +
                std::to_string(id) + "')";
    }
    auto inserted = env.db().Execute(insert);
    if (!inserted.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   inserted.status().ToString().c_str());
      return 2;
    }
  }

  wsq::WsqDatabase::ExecOptions plain;
  wsq::WsqDatabase::ExecOptions analyze;
  analyze.analyze = true;
  wsq::WsqDatabase::ExecOptions trace;
  trace.trace = true;

  wsq::MetricsRegistry* registry = wsq::MetricsRegistry::Global();
  wsq::FlightRecorder* recorder = wsq::FlightRecorder::Global();
  // Warmup: fault in pages, warm allocator arenas, touch instruments,
  // register this thread's flight ring.
  RunBatch(env, plain);

  int64_t best_off = 0, best_default = 0;
  double default_pct = 0.0;
  // Even the median of per-pair deltas wanders a few percent run to run
  // on a busy machine, while the real instrumentation delta is a few
  // atomic operations per query. A genuine regression fails every
  // attempt; a noise spike passes on retry. --check takes the best of
  // up to kAttempts full measurements, stopping at the first pass.
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::vector<double> pair_pcts;
    pair_pcts.reserve(kPairs);
    for (int pair = 0; pair < kPairs; ++pair) {
      bool off_first = (pair % 2) == 0;
      int64_t t_off = 0, t_default = 0;
      for (int leg = 0; leg < 2; ++leg) {
        bool measure_off = (leg == 0) == off_first;
        registry->SetRecordingEnabled(!measure_off);
        int64_t t = RunBatch(env, plain);
        if (measure_off) {
          t_off = t;
          if (best_off == 0 || t < best_off) best_off = t;
        } else {
          t_default = t;
          if (best_default == 0 || t < best_default) best_default = t;
        }
      }
      pair_pcts.push_back(OverheadPct(t_off, t_default));
    }
    std::sort(pair_pcts.begin(), pair_pcts.end());
    double median =
        (pair_pcts[kPairs / 2 - 1] + pair_pcts[kPairs / 2]) / 2.0;
    if (attempt == 0 || median < default_pct) default_pct = median;
    if (!check || default_pct <= kBudgetPct) break;
  }
  registry->SetRecordingEnabled(true);

  // Non-gated modes, reported for the trajectory: metrics without the
  // recorder, then the opt-in profiling/tracing modes.
  int64_t best_recorder_off = 0, best_analyze = 0, best_trace = 0;
  recorder->SetEnabled(false);
  for (int rep = 0; rep < kRepeats; ++rep) {
    int64_t t = RunBatch(env, plain);
    if (rep == 0 || t < best_recorder_off) best_recorder_off = t;
  }
  recorder->SetEnabled(true);
  for (int rep = 0; rep < kRepeats; ++rep) {
    int64_t t_analyze = RunBatch(env, analyze);
    int64_t t_trace = RunBatch(env, trace);
    if (rep == 0 || t_analyze < best_analyze) best_analyze = t_analyze;
    if (rep == 0 || t_trace < best_trace) best_trace = t_trace;
  }

  const bool pass = default_pct <= kBudgetPct;

  using wsqbench::Json;
  Json config = Json::Object();
  config.Set("iters", kIters)
      .Set("pairs", kPairs)
      .Set("bulk_rows", kBulkRows)
      .Set("budget_pct", kBudgetPct);

  Json modes = Json::Object();
  {
    Json m = Json::Object();
    m.Set("micros", best_off);
    modes.Set("all_off", std::move(m));
  }
  {
    Json m = Json::Object();
    m.Set("micros", best_recorder_off)
        .Set("overhead_pct", OverheadPct(best_off, best_recorder_off));
    modes.Set("recorder_off", std::move(m));
  }
  {
    Json m = Json::Object();
    m.Set("micros", best_default)
        .Set("overhead_pct", default_pct)
        .Set("recorder", true);
    modes.Set("default", std::move(m));
  }
  {
    Json m = Json::Object();
    m.Set("micros", best_analyze)
        .Set("overhead_pct", OverheadPct(best_off, best_analyze));
    modes.Set("analyze", std::move(m));
  }
  {
    Json m = Json::Object();
    m.Set("micros", best_trace)
        .Set("overhead_pct", OverheadPct(best_off, best_trace));
    modes.Set("trace", std::move(m));
  }

  Json gates = Json::Object();
  gates.Set("default_within_budget", pass);

  Json root = Json::Object();
  root.Set("bench", "obs_overhead")
      .Set("config", std::move(config))
      .Set("modes", std::move(modes))
      .Set("gates", std::move(gates));
  if (!wsqbench::WriteBenchJson("BENCH_obs.json", root)) return 2;

  if (check && !pass) {
    std::fprintf(stderr,
                 "FAIL: default-mode (recorder on) overhead %.2f%% "
                 "exceeds the %.1f%% budget\n",
                 default_pct, kBudgetPct);
    return 1;
  }
  return 0;
}
