// E7/E14: ReqSync placement ablations (§4.5.4).
//  - Percolation + consolidation (the paper's algorithm) versus
//    insertion-only placement: without percolation each join's calls
//    must complete before the next join issues its own (Figure 6(b)),
//    halving the achievable concurrency on two-engine queries.
//  - The optimistic-work pitfall: when most calls cancel, the
//    asynchronous plan still pays for downstream work on provisional
//    tuples that sequential execution never created.

#include <cstdio>

#include "common/clock.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "plan/binder.h"
#include "wsq/demo.h"

namespace {

double RunWith(wsq::DemoEnv& env, const char* sql, bool async,
               wsq::RewriteOptions rewrite, uint64_t* calls) {
  wsq::WsqDatabase::ExecOptions options;
  options.async_iteration = async;
  options.rewrite = rewrite;
  auto r = env.db().Execute(sql, options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n%s\n", r.status().ToString().c_str(), sql);
    std::exit(1);
  }
  *calls = r->stats.external_calls;
  return r->stats.elapsed_micros * 1e-6;
}

}  // namespace

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 6000;
  options.latency = wsq::LatencyModel::Fixed(25000);
  wsq::DemoEnv env(options);

  const char* kTwoEngines =
      "Select Name, AV.URL, G.URL "
      "From Sigs, WebPages_AV AV, WebPages_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
      "G.Rank <= 3 and AV.T2 = 'computer' and G.T2 = 'computer'";

  std::printf("Two-engine query (74 potential calls), 25 ms latency\n\n");
  uint64_t calls = 0;
  double sync_secs = RunWith(env, kTwoEngines, false, {}, &calls);
  std::printf("  %-34s %8.3fs  (%llu calls)\n",
              "sequential (no async iteration):", sync_secs,
              (unsigned long long)calls);

  wsq::RewriteOptions insert_only;
  insert_only.insert_only = true;
  insert_only.consolidate = false;
  double staged = RunWith(env, kTwoEngines, true, insert_only, &calls);
  std::printf("  %-34s %8.3fs  (%llu calls)\n",
              "insertion-only ReqSync (Fig 6b):", staged,
              (unsigned long long)calls);

  double full = RunWith(env, kTwoEngines, true, {}, &calls);
  std::printf("  %-34s %8.3fs  (%llu calls)\n",
              "percolated + consolidated (Fig 6d):", full,
              (unsigned long long)calls);
  std::printf("\n  improvement: sequential/staged = %.1fx, "
              "sequential/full = %.1fx, staged/full = %.1fx\n",
              sync_secs / staged, sync_secs / full, staged / full);
  std::printf("  Expected: full percolation overlaps BOTH joins' calls "
              "(one latency wave);\n  insertion-only waits out the "
              "first join's wave before starting the second.\n\n");

  // Optimistic-work pitfall: a constant that matches (almost) nothing —
  // every WebPages call cancels, so async did all its dependent-join
  // work for tuples that disappear.
  const char* kMostlyEmpty =
      "Select Name, AV.URL, G.URL "
      "From Sigs, WebPages_AV AV, WebPages_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
      "G.Rank <= 3 and AV.T2 = 'zzyzxq' and G.T2 = 'zzyzxq'";
  uint64_t sync_calls = 0, async_calls = 0;
  double sync_empty = RunWith(env, kMostlyEmpty, false, {}, &sync_calls);
  double async_empty = RunWith(env, kMostlyEmpty, true, {}, &async_calls);
  std::printf("All-cancelling query (every search returns 0 rows):\n");
  std::printf("  sequential: %7.3fs with %llu calls "
              "(cancellations stop the pipeline early)\n",
              sync_empty, (unsigned long long)sync_calls);
  std::printf("  async:      %7.3fs with %llu calls "
              "(optimistic plan issued every call)\n",
              async_empty, (unsigned long long)async_calls);
  std::printf("  async still wins on wall-clock (%.1fx) but paid %llu "
              "extra backend calls —\n  the §4.5.4 \"optimistic "
              "approach will have performed more work than "
              "necessary\".\n\n",
              sync_empty / async_empty,
              (unsigned long long)(async_calls - sync_calls));

  // Time-to-first-row: buffered vs streaming ReqSync (§4.1's
  // materialize-vs-stream optimization issue). Measured at the
  // operator level so the first Next() is visible.
  std::printf("Time-to-first-row: buffered vs streaming ReqSync\n");
  for (bool streaming : {false, true}) {
    auto stmt = wsq::Parser::ParseSelect(
                    "Select Name, Count From States, WebCount "
                    "Where Name = T1")
                    .value();
    wsq::Binder binder(env.db().catalog(), env.db().vtables());
    wsq::RewriteOptions rewrite;
    rewrite.streaming_reqsync = streaming;
    auto plan = wsq::ApplyAsyncIteration(
                    std::move(binder.Bind(*stmt)).value(), rewrite)
                    .value();
    wsq::ExecContext ctx;
    ctx.pump = env.db().pump();
    auto root = wsq::BuildOperatorTree(*plan, &ctx).value();
    wsq::Stopwatch timer;
    if (!root->Open().ok()) return 1;
    wsq::Row row;
    auto first = root->Next(&row);
    double ttfr = timer.ElapsedMicros() * 1e-6;
    size_t rows = (first.ok() && *first) ? 1 : 0;
    while (true) {
      auto more = root->Next(&row);
      if (!more.ok() || !*more) break;
      ++rows;
    }
    double total = timer.ElapsedMicros() * 1e-6;
    WSQ_IGNORE_STATUS(root->Close());
    std::printf("  %-10s first row %.3fs, all %zu rows %.3fs\n",
                streaming ? "streaming:" : "buffered:", ttfr, rows,
                total);
  }
  std::printf(
      "  Expected: near-identical here — draining 50 provisional "
      "tuples is cheap, so\n  both modes block on the same first "
      "completion. Streaming pays off when the\n  child drain itself "
      "is expensive (\"very large joins\", paper section 4.1);\n  see "
      "tests/exec/req_sync_test.cc StreamingEmitsBeforeChildExhausted "
      "for the\n  operator-level behaviour.\n");
  return 0;
}
