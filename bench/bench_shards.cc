// Shard-count scaling for the scatter-gather search backend
// (net/sharded_service.h): one synthetic corpus queried through
// SimulatedShardClusters at N = 1/2/4/8 under a Zipf-skewed
// multi-threaded query mix. Reports per-N QPS and latency quantiles,
// the single-flight coalescing hit-rate and the hedge fire-rate, plus
// a dark-shard section exercising the three quorum policies.
//
// Emits BENCH_shards.json (run from the repo root). Gates, checked
// with --check (non-zero exit on violation):
//   - merged results identical to the unsharded reference at every N
//   - with one shard dark, 3-of-4 quorum still answers (degraded)
//   - best-effort p99 with a dark shard stays <= 2x the fault-free p99
//   - the fail policy reports kUnavailable and the pump ledger stays
//     balanced (no leaked shard calls)

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "common/random.h"
#include "net/sharded_service.h"
#include "web/corpus.h"

namespace {

using wsqbench::Json;

constexpr size_t kThreads = 8;
constexpr size_t kQueriesPerThread = 150;
constexpr size_t kDarkThreads = 4;
constexpr size_t kDarkQueriesPerThread = 60;
constexpr size_t kQueryTerms = 32;
constexpr double kZipfSkew = 1.1;
constexpr uint64_t kSeed = 11;
constexpr size_t kShardCounts[] = {1, 2, 4, 8};

const wsq::Corpus& BenchCorpus() {
  static const wsq::Corpus* const kCorpus = [] {
    wsq::CorpusConfig cfg;
    cfg.num_documents = 1500;
    cfg.vocab_size = 400;
    cfg.seed = kSeed;
    return new wsq::Corpus(wsq::Corpus::Generate(
        cfg, {{"colorado", 3.0}, {"utah", 1.5}, {"nevada", 0.5}}));
  }();
  return *kCorpus;
}

wsq::SearchEngineConfig EngineConfig() {
  wsq::SearchEngineConfig cfg;
  cfg.name = "AV";
  cfg.rank_seed = 1234;
  return cfg;
}

/// Zipf-ranked query vocabulary: the planted entities first (the hot
/// head, so coalescing has something to coalesce), then background
/// vocabulary words.
std::vector<std::string> QueryTerms() {
  std::vector<std::string> terms = {"colorado", "utah", "nevada"};
  const std::vector<std::string>& vocab = BenchCorpus().vocabulary();
  for (size_t i = 0; i < vocab.size() && terms.size() < kQueryTerms; ++i) {
    terms.push_back(vocab[i]);
  }
  return terms;
}

wsq::SearchRequest Count(const std::string& q) {
  wsq::SearchRequest req;
  req.kind = wsq::SearchRequest::Kind::kCount;
  req.query = q;
  return req;
}

wsq::SearchRequest TopK(const std::string& q, size_t k = 10) {
  wsq::SearchRequest req;
  req.kind = wsq::SearchRequest::Kind::kTopK;
  req.query = q;
  req.k = k;
  return req;
}

/// Unsharded ground truth (instant latency: correctness only).
wsq::SearchResponse Reference(wsq::SearchRequest req) {
  static wsq::SearchEngine* const kEngine =
      new wsq::SearchEngine(&BenchCorpus(), EngineConfig());
  static wsq::SimulatedSearchService* const kService = [] {
    wsq::SimulatedSearchService::Options opt;
    opt.latency = wsq::LatencyModel::Instant();
    return new wsq::SimulatedSearchService(kEngine, opt);
  }();
  return kService->Execute(std::move(req));
}

bool SameResponse(const wsq::SearchResponse& a,
                  const wsq::SearchResponse& b) {
  if (a.count != b.count || a.hits.size() != b.hits.size()) return false;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].url != b.hits[i].url || a.hits[i].rank != b.hits[i].rank ||
        a.hits[i].doc != b.hits[i].doc || a.hits[i].date != b.hits[i].date ||
        a.hits[i].score != b.hits[i].score) {
      return false;
    }
  }
  return true;
}

/// The measured workload: wide-area latency with a heavy tail (the
/// tail is what hedging clips) and replicas for the hedges to land on.
wsq::SimulatedShardCluster::Options ScalingOptions(size_t n) {
  wsq::SimulatedShardCluster::Options opt;
  opt.num_shards = n;
  opt.engine = EngineConfig();
  opt.latency = wsq::LatencyModel{2000, 1000, 0.05, 5.0};
  opt.seed = kSeed;
  opt.with_replicas = true;
  opt.service.poll_micros = 500;
  opt.service.default_hedge_delay_micros = 8000;
  return opt;
}

/// Dark-shard fixture: 4 shards, shard 1 unreachable (every call
/// answers kUnavailable, never healing), no replicas to hide behind.
/// `dark` false gives the byte-equal fault-free baseline.
wsq::SimulatedShardCluster::Options DarkOptions(bool dark) {
  wsq::SimulatedShardCluster::Options opt;
  opt.num_shards = 4;
  opt.engine = EngineConfig();
  opt.latency = wsq::LatencyModel{2000, 1000, 0.05, 5.0};
  opt.seed = kSeed;
  opt.with_replicas = false;
  opt.service.poll_micros = 500;
  opt.retry.max_attempts = 2;
  if (dark) {
    opt.shard_faults.resize(4);
    opt.shard_faults[1].transient_rate = 1.0;
    opt.shard_faults[1].transient_tries = 1u << 30;
  }
  return opt;
}

struct WorkloadResult {
  double wall_seconds = 0;
  double qps = 0;
  int64_t p50 = 0, p95 = 0, p99 = 0;
  uint64_t ok = 0, partial = 0, failed = 0, unavailable = 0;
  bool counts_bounded = true;
  wsq::ShardedServiceStats stats;
  bool ledger_balanced = false;
};

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

WorkloadResult RunWorkload(wsq::SimulatedShardCluster& cluster,
                           wsq::ShardPolicy policy, size_t min_shards,
                           const std::vector<std::string>& terms,
                           const std::map<std::string, int64_t>& truth,
                           size_t threads, size_t per_thread) {
  const wsq::ZipfDistribution zipf(terms.size(), kZipfSkew);
  WorkloadResult out;
  std::vector<std::vector<int64_t>> lat(threads);
  std::atomic<uint64_t> ok{0}, partial{0}, failed{0}, unavailable{0};
  std::atomic<bool> bounded{true};

  wsq::Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      wsq::Rng rng(kSeed * 977 + t);
      lat[t].reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        const std::string& term = terms[zipf.Sample(rng)];
        bool count = rng.NextDouble() < 0.7;
        wsq::SearchRequest req = count ? Count(term) : TopK(term);
        req.shard.policy = policy;
        req.shard.min_shards = min_shards;
        wsq::Stopwatch timer;
        wsq::SearchResponse resp = cluster.service()->Execute(req);
        lat[t].push_back(timer.ElapsedMicros());
        if (resp.status.ok()) {
          ++ok;
          if (resp.partial) ++partial;
          if (count && resp.count > truth.at(term)) bounded = false;
        } else {
          ++failed;
          if (resp.status.code() == wsq::StatusCode::kUnavailable) {
            ++unavailable;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  out.wall_seconds =
      static_cast<double>(wall.ElapsedMicros()) / 1e6;

  std::vector<int64_t> all;
  for (std::vector<int64_t>& v : lat) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  out.p50 = Percentile(all, 0.50);
  out.p95 = Percentile(all, 0.95);
  out.p99 = Percentile(all, 0.99);
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(all.size()) / out.wall_seconds
                : 0.0;
  out.ok = ok;
  out.partial = partial;
  out.failed = failed;
  out.unavailable = unavailable;
  out.counts_bounded = bounded;
  out.stats = cluster.service()->stats();

  cluster.Quiesce();
  wsq::ReqPumpStats pump = cluster.pump()->stats();
  out.ledger_balanced =
      pump.registered == pump.completed + pump.cancelled + pump.shed;
  return out;
}

double Rate(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

Json LatencyJson(const WorkloadResult& r) {
  Json j = Json::Object();
  j.Set("qps", r.qps)
      .Set("p50_micros", static_cast<long long>(r.p50))
      .Set("p95_micros", static_cast<long long>(r.p95))
      .Set("p99_micros", static_cast<long long>(r.p99));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;
  const std::vector<std::string> terms = QueryTerms();

  // Ground truth per term (for lower-bound checks under degradation).
  std::map<std::string, int64_t> truth;
  for (const std::string& t : terms) truth[t] = Reference(Count(t)).count;

  const char* kProbeQueries[] = {"colorado", "utah", "colorado utah",
                                 "nevada", "zzz_nohit"};

  Json scaling = Json::Array();
  bool identical_all = true;
  for (size_t n : kShardCounts) {
    wsq::SimulatedShardCluster cluster(&BenchCorpus(), ScalingOptions(n));

    // Correctness probe first: merged answers must match the unsharded
    // reference exactly (count and the full top-k hit list).
    bool identical = true;
    for (const char* q : kProbeQueries) {
      if (!SameResponse(cluster.service()->Execute(Count(q)),
                        Reference(Count(q))) ||
          !SameResponse(cluster.service()->Execute(TopK(q)),
                        Reference(TopK(q)))) {
        identical = false;
      }
    }
    identical_all = identical_all && identical;

    WorkloadResult r =
        RunWorkload(cluster, wsq::ShardPolicy::kFail, 0, terms, truth,
                    kThreads, kQueriesPerThread);
    const wsq::ShardedServiceStats& s = r.stats;
    Json row = Json::Object();
    row.Set("shards", static_cast<long long>(n))
        .Set("identical_to_unsharded", identical)
        .Set("queries", static_cast<long long>(r.ok + r.failed))
        .Set("qps", r.qps)
        .Set("p50_micros", static_cast<long long>(r.p50))
        .Set("p95_micros", static_cast<long long>(r.p95))
        .Set("p99_micros", static_cast<long long>(r.p99))
        .Set("coalesce_hit_rate", Rate(s.coalesced, s.fanouts + s.coalesced))
        .Set("hedge_fire_rate", Rate(s.hedges, s.shard_calls - s.hedges))
        .Set("hedge_win_rate", Rate(s.hedge_wins, s.hedges))
        .Set("shard_calls", s.shard_calls)
        .Set("ledger_balanced", r.ledger_balanced);
    scaling.Push(std::move(row));
  }

  // Dark-shard section: same workload shape at N=4 with shard 1 dark.
  wsq::SimulatedShardCluster baseline(&BenchCorpus(), DarkOptions(false));
  WorkloadResult fault_free =
      RunWorkload(baseline, wsq::ShardPolicy::kBestEffort, 0, terms, truth,
                  kDarkThreads, kDarkQueriesPerThread);

  wsq::SimulatedShardCluster dark_best(&BenchCorpus(), DarkOptions(true));
  WorkloadResult best =
      RunWorkload(dark_best, wsq::ShardPolicy::kBestEffort, 0, terms, truth,
                  kDarkThreads, kDarkQueriesPerThread);

  wsq::SimulatedShardCluster dark_quorum(&BenchCorpus(), DarkOptions(true));
  WorkloadResult quorum =
      RunWorkload(dark_quorum, wsq::ShardPolicy::kQuorum, 3, terms, truth,
                  kDarkThreads, kDarkQueriesPerThread);

  wsq::SimulatedShardCluster dark_fail(&BenchCorpus(), DarkOptions(true));
  WorkloadResult fail =
      RunWorkload(dark_fail, wsq::ShardPolicy::kFail, 0, terms, truth,
                  kDarkThreads, kDarkQueriesPerThread);

  const uint64_t dark_total = kDarkThreads * kDarkQueriesPerThread;
  bool quorum_gate = quorum.ok == dark_total &&
                     quorum.partial == dark_total && quorum.counts_bounded &&
                     quorum.ledger_balanced;
  double p99_ratio = fault_free.p99 > 0
                         ? static_cast<double>(best.p99) /
                               static_cast<double>(fault_free.p99)
                         : 0.0;
  bool best_gate = best.ok == dark_total && p99_ratio <= 2.0 &&
                   best.counts_bounded && best.ledger_balanced;
  bool fail_gate = fail.failed == dark_total &&
                   fail.unavailable == dark_total && fail.ledger_balanced;
  bool pass = identical_all && quorum_gate && best_gate && fail_gate;

  Json quorum_json = Json::Object();
  quorum_json.Set("min_shards", 3)
      .Set("queries", dark_total)
      .Set("ok", quorum.ok)
      .Set("partial", quorum.partial)
      .Set("degraded_shards", quorum.stats.degraded_shards)
      .Set("counts_lower_bound", quorum.counts_bounded)
      .Set("ledger_balanced", quorum.ledger_balanced);

  Json best_json = LatencyJson(best);
  best_json.Set("ok", best.ok)
      .Set("partial", best.partial)
      .Set("fault_free_p99_micros", static_cast<long long>(fault_free.p99))
      .Set("p99_ratio", p99_ratio)
      .Set("within_2x", p99_ratio <= 2.0)
      .Set("ledger_balanced", best.ledger_balanced);

  Json fail_json = Json::Object();
  fail_json.Set("queries", dark_total)
      .Set("failed", fail.failed)
      .Set("unavailable", fail.unavailable)
      .Set("ledger_balanced", fail.ledger_balanced);

  Json config = Json::Object();
  config.Set("corpus_docs", 1500)
      .Set("query_terms", static_cast<long long>(terms.size()))
      .Set("zipf_skew", kZipfSkew)
      .Set("threads", static_cast<long long>(kThreads))
      .Set("queries_per_thread", static_cast<long long>(kQueriesPerThread))
      .Set("latency_base_micros", 2000)
      .Set("latency_tail", "5x at p=0.05")
      .Set("seed", static_cast<long long>(kSeed));

  Json dark = Json::Object();
  dark.Set("shards", 4)
      .Set("dark_shard", 1)
      .Set("quorum_3_of_4", std::move(quorum_json))
      .Set("best_effort", std::move(best_json))
      .Set("fail", std::move(fail_json));

  Json gates = Json::Object();
  gates.Set("identical_to_unsharded_all_n", identical_all)
      .Set("quorum_degrades_not_fails", quorum_gate)
      .Set("best_effort_p99_within_2x", best_gate)
      .Set("fail_unavailable_no_leaks", fail_gate)
      .Set("pass", pass);

  Json root = Json::Object();
  root.Set("bench", "shards")
      .Set("config", std::move(config))
      .Set("scaling", std::move(scaling))
      .Set("dark_shard", std::move(dark))
      .Set("gates", std::move(gates));

  if (!wsqbench::WriteBenchJson("BENCH_shards.json", root)) return 2;
  if (check && !pass) {
    std::fprintf(stderr, "bench_shards: gate violated (see gates)\n");
    return 1;
  }
  return 0;
}
