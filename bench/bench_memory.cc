// Memory-governor degradation bench: the same Zipf-skewed query mix
// (full sorts, grouped aggregates, DISTINCT over a ~23 MB tracked
// working set) run under database budgets of unlimited / 64 MB /
// 16 MB / 4 MB. Each budget runs in its own forked child so the
// kernel's peak-RSS counter (getrusage ru_maxrss) is measured
// independently per setting; results cross the pipe as a fixed-size
// record.
//
// Emits BENCH_memory.json (run from the repo root). Gates, checked
// with --check (non-zero exit on violation):
//   - every budget returns byte-identical results (row-hash equality
//     against the unlimited run; degradation must never change answers)
//   - per-query tracked peak stays under each finite budget
//   - degradation is monotone: tighter budgets spill at least as many
//     bytes, and the unlimited run spills nothing
//   - peak RSS of the tightest budget stays bounded by the unlimited
//     run's peak (spilling trades disk for memory, never the reverse)
//   - ledgers balance: after the mix, the only bytes still charged are
//     the buffer pool's resident pages, and no spill scratch files
//     remain

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "common/random.h"
#include "storage/page.h"
#include "wsq/database.h"

namespace {

using wsqbench::Json;

constexpr size_t kRows = 120000;
constexpr size_t kQueries = 16;
constexpr double kZipfSkew = 1.1;
constexpr uint64_t kSeed = 17;
constexpr size_t kMB = 1024 * 1024;
// 0 = unlimited; must stay first (it is the correctness and RSS
// reference for the constrained runs).
constexpr size_t kBudgets[] = {0, 64 * kMB, 16 * kMB, 4 * kMB};

// The Zipf head is the full sort — the most memory-hungry shape.
const char* const kMix[] = {
    "SELECT K, V FROM Big ORDER BY K, V",
    "SELECT K, COUNT(*), SUM(V), MIN(V), MAX(V) FROM Big "
    "GROUP BY K ORDER BY K",
    "SELECT G, V FROM Big ORDER BY G DESC, V",
    "SELECT DISTINCT K FROM Big ORDER BY K",
    "SELECT G, COUNT(*) FROM Big GROUP BY G ORDER BY G",
};

/// Everything a child measures, shipped through the pipe verbatim.
struct ChildReport {
  double load_seconds = 0;
  double wall_seconds = 0;
  uint64_t result_hash = 0;
  uint64_t result_rows = 0;
  uint64_t queries_ok = 0;
  uint64_t refusals = 0;  // kResourceExhausted admission retries
  uint64_t failed = 0;    // queries that never succeeded
  uint64_t spilled_bytes = 0;
  uint64_t spill_runs = 0;
  uint64_t peak_tracked_bytes = 0;  // max over the mix
  uint64_t pressure_released_bytes = 0;
  int64_t p50_micros = 0;
  int64_t p95_micros = 0;
  uint64_t ru_maxrss_kb = 0;
  uint64_t resident_bytes = 0;
  uint64_t final_used_bytes = 0;
  uint64_t active_spill_files = 0;
};

void LoadBigTable(wsq::WsqDatabase* db) {
  wsq::TableInfo* t = *db->catalog()->CreateTable(
      "Big", wsq::Schema({wsq::Column("K", wsq::TypeId::kString),
                          wsq::Column("G", wsq::TypeId::kInt64),
                          wsq::Column("V", wsq::TypeId::kInt64)}));
  wsq::Rng rng(99);
  for (size_t i = 0; i < kRows; ++i) {
    wsq::Status s = t->Insert(wsq::Row(
        {wsq::Value::Str("row-" + std::to_string(rng.Uniform(509))),
         wsq::Value::Int(static_cast<int64_t>(rng.Uniform(61))),
         wsq::Value::Int(static_cast<int64_t>(i))}));
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      _exit(3);
    }
  }
}

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// FNV-1a mix of every result row, in emission order: two runs agree
/// iff they produced the same rows in the same order.
void MixRows(const wsq::ResultSet& result, uint64_t* hash,
             uint64_t* rows) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  *hash = (*hash ^ result.rows.size()) * kPrime;
  for (const wsq::Row& row : result.rows) {
    *hash = (*hash ^ row.Hash()) * kPrime;
    ++*rows;
  }
}

ChildReport RunBudget(size_t budget_bytes) {
  ChildReport out;
  wsq::WsqDatabase::Options options;
  options.memory_budget_bytes = budget_bytes;
  wsq::WsqDatabase db(options);

  wsq::Stopwatch load;
  LoadBigTable(&db);
  out.load_seconds = static_cast<double>(load.ElapsedMicros()) / 1e6;

  out.result_hash = 14695981039346656037ULL;  // FNV offset basis
  wsq::Rng rng(kSeed);
  wsq::ZipfDistribution zipf(std::size(kMix), kZipfSkew);
  std::vector<int64_t> lat;
  lat.reserve(kQueries);

  wsq::Stopwatch wall;
  for (size_t i = 0; i < kQueries; ++i) {
    const char* sql = kMix[zipf.Sample(rng)];
    wsq::Stopwatch timer;
    auto r = db.Execute(sql);
    // Tier 3 may refuse admission under a full budget; the contract is
    // "retry after load drops" — a single-threaded mix should drain
    // immediately.
    for (int retry = 0; !r.ok() &&
                        r.status().code() ==
                            wsq::StatusCode::kResourceExhausted &&
                        retry < 50;
         ++retry) {
      ++out.refusals;
      r = db.Execute(sql);
    }
    lat.push_back(timer.ElapsedMicros());
    if (!r.ok()) {
      ++out.failed;
      std::fprintf(stderr, "query failed under budget %zu: %s\n",
                   budget_bytes, r.status().ToString().c_str());
      continue;
    }
    ++out.queries_ok;
    MixRows(r->result, &out.result_hash, &out.result_rows);
    out.spilled_bytes += r->stats.spilled_bytes;
    out.spill_runs += r->stats.spill_runs;
    out.pressure_released_bytes += r->stats.pressure_released_bytes;
    out.peak_tracked_bytes =
        std::max(out.peak_tracked_bytes, r->stats.peak_memory_bytes);
  }
  out.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;

  std::sort(lat.begin(), lat.end());
  out.p50_micros = Percentile(lat, 0.50);
  out.p95_micros = Percentile(lat, 0.95);

  out.resident_bytes =
      db.buffer_pool()->resident_pages() * wsq::kPageSize;
  out.final_used_bytes = db.memory_budget()->used();
  out.active_spill_files = db.spill()->active_files();

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  out.ru_maxrss_kb = static_cast<uint64_t>(ru.ru_maxrss);
  return out;
}

/// Forks a child for one budget setting so its peak RSS is measured in
/// isolation; the report returns over a pipe.
bool RunBudgetInChild(size_t budget_bytes, ChildReport* report) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    close(fds[0]);
    ChildReport r = RunBudget(budget_bytes);
    const char* p = reinterpret_cast<const char*>(&r);
    size_t left = sizeof(r);
    while (left > 0) {
      ssize_t n = write(fds[1], p, left);
      if (n <= 0) _exit(4);
      p += n;
      left -= static_cast<size_t>(n);
    }
    close(fds[1]);
    // _exit: the parent's stdio buffers are inherited; a normal exit
    // would flush them a second time.
    _exit(0);
  }
  close(fds[1]);
  char* p = reinterpret_cast<char*>(report);
  size_t left = sizeof(*report);
  while (left > 0) {
    ssize_t n = read(fds[0], p, left);
    if (n <= 0) break;
    p += n;
    left -= static_cast<size_t>(n);
  }
  close(fds[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return left == 0 && WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
}

std::string BudgetName(size_t bytes) {
  if (bytes == 0) return "unlimited";
  return std::to_string(bytes / kMB) + "MB";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

  constexpr size_t kNumBudgets = std::size(kBudgets);
  ChildReport reports[kNumBudgets];
  bool children_ok = true;
  for (size_t i = 0; i < kNumBudgets; ++i) {
    if (!RunBudgetInChild(kBudgets[i], &reports[i])) {
      std::fprintf(stderr, "bench_memory: child for budget %s failed\n",
                   BudgetName(kBudgets[i]).c_str());
      children_ok = false;
    }
  }

  const ChildReport& unlimited = reports[0];
  const ChildReport& tightest = reports[kNumBudgets - 1];

  bool identical = children_ok;
  bool tracked_bounded = true;
  bool monotone_spill = children_ok && unlimited.spilled_bytes == 0 &&
                        tightest.spilled_bytes > 0;
  bool ledger_balanced = children_ok;
  for (size_t i = 0; i < kNumBudgets; ++i) {
    const ChildReport& r = reports[i];
    identical = identical && r.queries_ok == kQueries && r.failed == 0 &&
                r.result_hash == unlimited.result_hash &&
                r.result_rows == unlimited.result_rows;
    if (kBudgets[i] != 0) {
      // The charge protocol permits one forced per-row overage past the
      // limit (measured: < 200 bytes); bound it at a page-sized slack.
      tracked_bounded = tracked_bounded &&
                        r.peak_tracked_bytes <= kBudgets[i] + 16 * 1024;
      // Budgets are ordered loosest → tightest: spill must not shrink.
      monotone_spill = monotone_spill &&
                       r.spilled_bytes >= reports[i - 1].spilled_bytes;
    }
    ledger_balanced = ledger_balanced &&
                      r.final_used_bytes == r.resident_bytes &&
                      r.active_spill_files == 0;
  }
  // Spilling bounds the working set: the tightest budget's peak RSS
  // must not exceed the unlimited run's (small slack for allocator /
  // sanitizer noise; the expected gap is tens of megabytes).
  constexpr uint64_t kRssSlackKb = 4096;
  bool rss_bounded =
      children_ok &&
      tightest.ru_maxrss_kb <= unlimited.ru_maxrss_kb + kRssSlackKb;
  bool pass = children_ok && identical && tracked_bounded &&
              monotone_spill && rss_bounded && ledger_balanced;

  Json budgets = Json::Array();
  for (size_t i = 0; i < kNumBudgets; ++i) {
    const ChildReport& r = reports[i];
    double qps = r.wall_seconds > 0
                     ? static_cast<double>(r.queries_ok) / r.wall_seconds
                     : 0.0;
    Json row = Json::Object();
    row.Set("budget", BudgetName(kBudgets[i]))
        .Set("budget_bytes", static_cast<long long>(kBudgets[i]))
        .Set("queries", r.queries_ok)
        .Set("wall_seconds", r.wall_seconds)
        .Set("qps", qps)
        .Set("p50_micros", r.p50_micros)
        .Set("p95_micros", r.p95_micros)
        .Set("spilled_bytes", r.spilled_bytes)
        .Set("spill_runs", r.spill_runs)
        .Set("peak_tracked_bytes", r.peak_tracked_bytes)
        .Set("pressure_released_bytes", r.pressure_released_bytes)
        .Set("admission_retries", r.refusals)
        .Set("peak_rss_kb", r.ru_maxrss_kb)
        .Set("identical_to_unlimited",
             r.result_hash == unlimited.result_hash)
        .Set("ledger_balanced", r.final_used_bytes == r.resident_bytes &&
                                    r.active_spill_files == 0);
    budgets.Push(std::move(row));
  }

  Json config = Json::Object();
  config.Set("rows", static_cast<long long>(kRows))
      .Set("queries", static_cast<long long>(kQueries))
      .Set("mix_shapes", static_cast<long long>(std::size(kMix)))
      .Set("zipf_skew", kZipfSkew)
      .Set("result_rows_per_run", unlimited.result_rows)
      .Set("seed", static_cast<long long>(kSeed));

  Json gates = Json::Object();
  gates.Set("children_ok", children_ok)
      .Set("identical_across_budgets", identical)
      .Set("tracked_peak_under_budget", tracked_bounded)
      .Set("spill_monotone_with_pressure", monotone_spill)
      .Set("tightest_rss_bounded_by_unlimited", rss_bounded)
      .Set("ledgers_balanced_no_leaked_files", ledger_balanced)
      .Set("pass", pass);

  Json root = Json::Object();
  root.Set("bench", "memory")
      .Set("config", std::move(config))
      .Set("budgets", std::move(budgets))
      .Set("gates", std::move(gates));

  if (!wsqbench::WriteBenchJson("BENCH_memory.json", root)) return 2;
  if (check && !pass) {
    std::fprintf(stderr, "bench_memory: gate violated (see gates)\n");
    return 1;
  }
  return 0;
}
