// E15: substrate microbenchmarks (google-benchmark). These are not
// paper experiments; they characterize the building blocks so the
// macro results can be sanity-checked (e.g. local per-call processing
// cost vs simulated network latency).

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "storage/bplus_tree.h"
#include "data/datasets.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "plan/async_rewriter.h"
#include "plan/binder.h"
#include "search/search_engine.h"
#include "storage/serde.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

void BM_ValueCompare(benchmark::State& state) {
  Value a = Value::Str("California");
  Value b = Value::Str("Colorado");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompare);

void BM_RowSerde(benchmark::State& state) {
  Row row({Value::Str("California"), Value::Int(32667000),
           Value::Str("Sacramento")});
  for (auto _ : state) {
    auto bytes = SerializeRow(row);
    auto back = DeserializeRow(*bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RowSerde);

void BM_HeapFileInsertScan(benchmark::State& state) {
  for (auto _ : state) {
    InMemoryDiskManager disk;
    BufferPool pool(64, &disk);
    HeapFile file(&pool);
    for (int i = 0; i < 256; ++i) {
      WSQ_IGNORE_STATUS(file.Insert("record-" + std::to_string(i)));
    }
    HeapFileScanner scanner(&file);
    std::string rec;
    int n = 0;
    while (*scanner.Next(nullptr, &rec)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_HeapFileInsertScan);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(8, &disk);
  Page* p = *pool.NewPage();
  WSQ_IGNORE_STATUS(pool.UnpinPage(p->page_id(), false));
  for (auto _ : state) {
    Page* page = *pool.FetchPage(0);
    benchmark::DoNotOptimize(page);
    WSQ_IGNORE_STATUS(pool.UnpinPage(0, false));
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_ParseSelect(benchmark::State& state) {
  const char* sql =
      "Select Capital, C.Count, Name, S.Count "
      "From States, WebCount C, WebCount S "
      "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count "
      "Order By Capital Desc LIMIT 10";
  for (auto _ : state) {
    auto stmt = Parser::ParseSelect(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSelect);

const Corpus& MicroCorpus() {
  static const Corpus* const kCorpus = [] {
    CorpusConfig cfg = DefaultPaperCorpusConfig();
    cfg.num_documents = 4000;
    return new Corpus(MakePaperCorpus(cfg));
  }();
  return *kCorpus;
}

void BM_IndexBuild(benchmark::State& state) {
  for (auto _ : state) {
    InvertedIndex index(&MicroCorpus());
    benchmark::DoNotOptimize(index.num_terms());
  }
}
BENCHMARK(BM_IndexBuild);

const SearchEngine& MicroEngine() {
  static const SearchEngine* const kEngine = [] {
    SearchEngineConfig cfg;
    cfg.name = "bench";
    return new SearchEngine(&MicroCorpus(), cfg);
  }();
  return *kEngine;
}

void BM_EngineCountSingleTerm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(*MicroEngine().Count("california"));
  }
}
BENCHMARK(BM_EngineCountSingleTerm);

void BM_EngineCountNearPhrase(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        *MicroEngine().Count("colorado near four corners"));
  }
}
BENCHMARK(BM_EngineCountNearPhrase);

void BM_EngineTopK(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(*MicroEngine().Search("california", 10));
  }
}
BENCHMARK(BM_EngineTopK);

DemoEnv& MicroEnv() {
  static DemoEnv* const kEnv = [] {
    DemoOptions opt;
    opt.corpus.num_documents = 2000;
    opt.latency = LatencyModel::Instant();
    return new DemoEnv(opt);
  }();
  return *kEnv;
}

void BM_BindAndRewrite(benchmark::State& state) {
  auto stmt = Parser::ParseSelect(
                  "Select Name, AV.URL From States, WebPages_AV AV, "
                  "WebPages_Google G Where Name = AV.T1 and Name = G.T1 "
                  "and AV.Rank <= 5 and G.Rank <= 5 and AV.URL = G.URL")
                  .value();
  Binder binder(MicroEnv().db().catalog(), MicroEnv().db().vtables());
  for (auto _ : state) {
    auto plan = binder.Bind(*stmt);
    auto rewritten = ApplyAsyncIteration(std::move(plan).value());
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_BindAndRewrite);

WsqDatabase& IndexedDb() {
  static WsqDatabase* const kDb = [] {
    auto* db = new WsqDatabase();
    WSQ_IGNORE_STATUS(db->Execute("CREATE TABLE Big (K STRING, V INT)"));
    TableInfo* t = *db->catalog()->GetTable("Big");
    for (int i = 0; i < 20000; ++i) {
      WSQ_IGNORE_STATUS(t->Insert(Row({Value::Str("key" + std::to_string(i % 2000)),
                           Value::Int(i)})));
    }
    WSQ_IGNORE_STATUS(db->Execute("CREATE INDEX ix_big ON Big (K)"));
    return db;
  }();
  return *kDb;
}

void BM_SeqScanFilter20k(benchmark::State& state) {
  // Force a sequential scan by filtering on the unindexed column pair.
  for (auto _ : state) {
    auto r = IndexedDb().Execute(
        "SELECT V FROM Big WHERE K = 'key777' AND V >= 0");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SeqScanFilter20k);

void BM_IndexScan20k(benchmark::State& state) {
  for (auto _ : state) {
    auto r = IndexedDb().Execute("SELECT V FROM Big WHERE K = 'key777'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexScan20k);

void BM_BTreeInsertLookup(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(512, &disk);
  BPlusTree tree(&pool);
  int64_t next = 0;
  for (auto _ : state) {
    WSQ_IGNORE_STATUS(tree.Insert(Value::Int(next), Rid{0, static_cast<uint16_t>(
                                               next % 1000)}));
    benchmark::DoNotOptimize(tree.SearchEqual(Value::Int(next / 2)));
    ++next;
  }
}
BENCHMARK(BM_BTreeInsertLookup);

void BM_StoredOnlyQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto r = MicroEnv().Run(
        "SELECT Capital, COUNT(*) FROM States GROUP BY Capital "
        "ORDER BY Capital LIMIT 5");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StoredOnlyQuery);

void BM_WsqQueryZeroLatency(benchmark::State& state) {
  // Full WSQ pipeline cost with the network removed: parser + binder +
  // rewriter + 37 async calls + ReqSync patching.
  for (auto _ : state) {
    auto r = MicroEnv().Run(
        "Select Name, Count From Sigs, WebCount Where Name = T1 and "
        "T2 = 'computer' Order By Count Desc");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WsqQueryZeroLatency);

}  // namespace
}  // namespace wsq

BENCHMARK_MAIN();
