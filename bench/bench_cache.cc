// E12: search-result caching. Reproduces two observations:
//  1. §5: "repeated searches with identical keyword expressions may run
//     far faster the second (and subsequent) times" — a client-side
//     ResultCache answers repeats locally.
//  2. §4.5.4 Example 2: a cross-product between dependent joins sends
//     |R| identical calls per Sig, so "incorporating a local cache of
//     search engine results is very important for such a plan". Note
//     the asymmetry: sequential execution benefits from the cache on
//     repeats within the query, while asynchronous iteration fires all
//     duplicates before the first completes and cannot.

#include <cstdio>

#include "wsq/demo.h"

namespace {

double RunSecs(wsq::DemoEnv& env, const char* sql, bool async,
               uint64_t* calls = nullptr) {
  auto r = env.Run(sql, async);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  if (calls != nullptr) *calls = r->stats.external_calls;
  return r->stats.elapsed_micros * 1e-6;
}

}  // namespace

int main() {
  const char* kQuery =
      "Select Name, Count From Sigs, WebCount "
      "Where Name = T1 and T2 = 'computer' Order By Count Desc";

  std::printf("Part 1: repeated identical query, client cache on\n\n");
  {
    wsq::DemoOptions options;
    options.corpus.num_documents = 4000;
    options.latency = wsq::LatencyModel::Fixed(20000);
    options.client_cache_entries = 4096;
    wsq::DemoEnv env(options);

    double first = RunSecs(env, kQuery, /*async=*/true);
    double second = RunSecs(env, kQuery, /*async=*/true);
    auto stats = env.client_cache()->stats();
    std::printf("  first run:  %7.3fs (cold cache)\n", first);
    std::printf("  second run: %7.3fs (cache hits: %llu)\n", second,
                (unsigned long long)stats.hits);
    std::printf("  repeat speedup: %.1fx\n\n", first / second);
  }

  std::printf("Part 2: Figure 7 plan — cross-product with R sends |R| "
              "duplicate searches per Sig\n\n");
  std::printf("%6s %10s %18s %18s %14s\n", "|R|", "cache", "sync(s)",
              "async(s)", "backend calls");
  for (size_t cache_entries : {size_t{0}, size_t{4096}}) {
    for (int r_size : {1, 4, 8}) {
      wsq::DemoOptions options;
      options.corpus.num_documents = 4000;
      options.latency = wsq::LatencyModel::Fixed(20000);
      options.client_cache_entries = cache_entries;
      wsq::DemoEnv env(options);

      WSQ_IGNORE_STATUS(env.db().Execute("CREATE TABLE R (X INT)"));
      for (int i = 0; i < r_size; ++i) {
        WSQ_IGNORE_STATUS(env.db().Execute("INSERT INTO R VALUES (" +
                               std::to_string(i) + ")"));
      }
      const char* fig7 =
          "Select Sigs.Name, AV.Count, G.Count "
          "From Sigs, WebCount_AV AV, R, WebCount_Google G "
          "Where Sigs.Name = AV.T1 and Sigs.Name = G.T1";

      double sync_secs = RunSecs(env, fig7, /*async=*/false);
      double async_secs = RunSecs(env, fig7, /*async=*/true);
      uint64_t backend = env.altavista_service().stats().total_requests +
                         env.google_service().stats().total_requests;
      std::printf("%6d %10s %17.3fs %17.3fs %14llu\n", r_size,
                  cache_entries == 0 ? "off" : "on", sync_secs,
                  async_secs, (unsigned long long)backend);
    }
  }
  std::printf(
      "\nExpected shape: without the cache, backend calls grow with "
      "|R| (duplicates);\nwith the cache the sequential plan's "
      "duplicates are absorbed, while the\nasynchronous plan still "
      "fires duplicates concurrently (cold cache), trading\nbackend "
      "load for wall-clock time — the cost-model tension the paper "
      "flags.\n");
  return 0;
}
