// E11: improvement factor versus simulated search latency. The paper's
// 10x+ results assume search time dominates query time; as latency
// shrinks toward local processing cost the benefit of asynchronous
// iteration fades (speedup -> 1), and as it grows the speedup
// approaches the per-query call count.

#include <cstdio>

#include "wsq/demo.h"

namespace {

const char* kQuery =
    "Select Name, Count From Sigs, WebCount "
    "Where Name = T1 and T2 = 'Knuth' Order By Count Desc";
// 37 concurrent searches (the paper's §4.1 example).

}  // namespace

int main() {
  std::printf("Latency sweep — 37-call Sigs/Knuth query\n\n");
  std::printf("%14s %12s %12s %12s\n", "latency (ms)", "sync(s)",
              "async(s)", "improvement");

  for (int latency_ms : {0, 1, 5, 10, 25, 50, 100, 200}) {
    wsq::DemoOptions options;
    options.corpus.num_documents = 4000;
    options.latency = wsq::LatencyModel::Fixed(latency_ms * 1000);
    wsq::DemoEnv env(options);

    auto sync = env.Run(kQuery, /*async_iteration=*/false);
    auto async = env.Run(kQuery, /*async_iteration=*/true);
    if (!sync.ok() || !async.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("%14d %12.3f %12.3f %11.1fx\n", latency_ms,
                sync->stats.elapsed_micros * 1e-6,
                async->stats.elapsed_micros * 1e-6,
                static_cast<double>(sync->stats.elapsed_micros) /
                    static_cast<double>(async->stats.elapsed_micros));
  }

  std::printf("\nExpected shape: improvement -> 1x as latency -> 0 "
              "(local work dominates); approaches the 37-call bound as "
              "latency grows.\nThe paper's reported 6-20x sits on this "
              "curve at ~1 s latency with 50-100 calls.\n");
  return 0;
}
