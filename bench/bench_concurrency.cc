// E10: asynchronous-iteration speedup versus the ReqPump concurrency
// limit (the paper's §4.1 resource-control knob: one global counter and
// one per destination, with queueing). With limit 1 the async plan
// degenerates to sequential issue; speedup grows roughly linearly until
// the query's call count saturates it.

#include <cstdio>

#include "wsq/demo.h"

namespace {

const char* kQuery =
    "Select Name, Count From States, WebCount Where Name = T1 "
    "Order By Count Desc";  // 50 concurrent searches

double Measure(wsq::DemoEnv& env, bool async) {
  auto r = env.Run(kQuery, async);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r->stats.elapsed_micros * 1e-6;
}

}  // namespace

int main() {
  const int kLatencyMs = 20;
  std::printf("Concurrency-limit sweep — 50-call WebCount query, "
              "%d ms simulated latency\n\n", kLatencyMs);
  std::printf("%12s %12s %12s %12s %12s\n", "limit", "sync(s)",
              "async(s)", "speedup", "max-inflight");

  for (int limit : {1, 2, 4, 8, 16, 32, 64, 0}) {
    wsq::DemoOptions options;
    options.corpus.num_documents = 4000;
    options.latency = wsq::LatencyModel::Fixed(kLatencyMs * 1000);
    options.pump_limits.max_global = limit;
    wsq::DemoEnv env(options);

    double sync_secs = Measure(env, /*async=*/false);
    double async_secs = Measure(env, /*async=*/true);
    auto stats = env.db().pump()->stats();
    std::string label =
        limit == 0 ? "unbounded" : std::to_string(limit);
    std::printf("%12s %12.3f %12.3f %11.1fx %12llu\n", label.c_str(),
                sync_secs, async_secs, sync_secs / async_secs,
                (unsigned long long)stats.max_in_flight);
  }

  std::printf("\nExpected shape: speedup ~= min(limit, 50); the "
              "unbounded row matches the paper's \"issue all requests "
              "at once\" design point.\n");
  return 0;
}
