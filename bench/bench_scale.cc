// Scalability of asynchronous iteration with the driving table's size:
// per-query Web calls grow linearly with |T|, so sequential time grows
// linearly while the asynchronous plan stays near one latency wave
// (until concurrency limits or server capacity bite — see
// bench_concurrency for those knobs).

#include <cstdio>

#include "common/strings.h"
#include "wsq/demo.h"

int main() {
  const int kLatencyMs = 20;
  wsq::DemoOptions options;
  options.corpus.num_documents = 6000;
  options.latency = wsq::LatencyModel::Fixed(kLatencyMs * 1000);
  wsq::DemoEnv env(options);

  std::printf("Driving-table size sweep — WebCount join, %d ms "
              "latency\n\n", kLatencyMs);
  std::printf("%8s %12s %12s %12s %10s\n", "|T|", "sync(s)", "async(s)",
              "improvement", "calls");

  const auto& vocab = env.corpus().vocabulary();
  for (int n : {5, 10, 25, 50, 100, 200}) {
    std::string table = "T" + std::to_string(n);
    if (!env.db()
             .Execute("CREATE TABLE " + table + " (Name STRING)")
             .ok()) {
      return 1;
    }
    wsq::TableInfo* t = *env.db().catalog()->GetTable(table);
    for (int i = 0; i < n; ++i) {
      // Draw terms from the background vocabulary so most lookups hit.
      WSQ_IGNORE_STATUS(t->Insert(wsq::Row(
          {wsq::Value::Str(vocab[(i * 37) % vocab.size()])})));
    }

    std::string sql = wsq::StrFormat(
        "Select Name, Count From %s, WebCount Where Name = T1",
        table.c_str());
    auto sync = env.Run(sql, /*async_iteration=*/false);
    auto async = env.Run(sql, /*async_iteration=*/true);
    if (!sync.ok() || !async.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("%8d %12.3f %12.3f %11.1fx %10llu\n", n,
                sync->stats.elapsed_micros * 1e-6,
                async->stats.elapsed_micros * 1e-6,
                static_cast<double>(sync->stats.elapsed_micros) /
                    static_cast<double>(async->stats.elapsed_micros),
                (unsigned long long)async->stats.external_calls);
  }

  std::printf("\nExpected shape: sequential time grows linearly with "
              "|T|; asynchronous time stays near one %d ms wave, so "
              "the improvement factor itself grows ~linearly — the "
              "paper's Web-crawler argument (§4.2) at query scale.\n",
              kLatencyMs);
  return 0;
}
