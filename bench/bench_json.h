#ifndef WSQ_BENCH_BENCH_JSON_H_
#define WSQ_BENCH_BENCH_JSON_H_

// Shared writer for the BENCH_*.json artifacts the benchmarks leave at
// the repo root (ROADMAP: the perf trajectory should be diffable run
// to run). Deliberately tiny: an ordered build-then-dump document, no
// parsing, no dependency. Keys emit in insertion order and numbers
// format deterministically, so two runs with identical measurements
// produce byte-identical files.

#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace wsqbench {

class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string v) {
    Json j(Kind::kString);
    j.str_ = std::move(v);
    return j;
  }
  static Json Int(long long v) {
    Json j(Kind::kInt);
    j.int_ = v;
    return j;
  }
  static Json Real(double v) {
    Json j(Kind::kReal);
    j.real_ = v;
    return j;
  }
  static Json Bool(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object member (insertion-ordered; duplicate keys append).
  Json& Set(const std::string& key, Json v) {
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  Json& Set(const std::string& key, const char* v) {
    return Set(key, Str(v));
  }
  Json& Set(const std::string& key, const std::string& v) {
    return Set(key, Str(v));
  }
  /// One template for every integer width (uint64_t is `unsigned long`
  /// on LP64 — fixed-width overloads would leave it ambiguous).
  template <typename T,
            typename std::enable_if<std::is_integral<T>::value &&
                                        !std::is_same<T, bool>::value,
                                    int>::type = 0>
  Json& Set(const std::string& key, T v) {
    return Set(key, Int(static_cast<long long>(v)));
  }
  Json& Set(const std::string& key, double v) { return Set(key, Real(v)); }
  Json& Set(const std::string& key, bool v) { return Set(key, Bool(v)); }

  /// Array element.
  Json& Push(Json v) {
    members_.emplace_back(std::string(), std::move(v));
    return *this;
  }

  std::string Dump(int indent = 1) const {
    std::string out;
    DumpTo(&out, indent, 0);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind { kObject, kArray, kString, kInt, kReal, kBool };

  explicit Json(Kind kind) : kind_(kind) {}

  static void AppendEscaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\t': *out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  void DumpTo(std::string* out, int indent, int depth) const {
    char buf[64];
    switch (kind_) {
      case Kind::kString:
        AppendEscaped(out, str_);
        return;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld", int_);
        *out += buf;
        return;
      case Kind::kReal:
        // Fixed precision, not %g: "123.4000" and "123.4" must not
        // alternate between runs that land on either side of a
        // formatting-width boundary.
        std::snprintf(buf, sizeof(buf), "%.4f", real_);
        *out += buf;
        return;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        return;
      case Kind::kObject:
      case Kind::kArray:
        break;
    }
    const bool object = kind_ == Kind::kObject;
    if (members_.empty()) {
      *out += object ? "{}" : "[]";
      return;
    }
    const std::string pad((depth + 1) * indent, ' ');
    *out += object ? "{\n" : "[\n";
    for (size_t i = 0; i < members_.size(); ++i) {
      *out += pad;
      if (object) {
        AppendEscaped(out, members_[i].first);
        *out += ": ";
      }
      members_[i].second.DumpTo(out, indent, depth + 1);
      if (i + 1 < members_.size()) *out += ",";
      *out += "\n";
    }
    out->append(depth * indent, ' ');
    *out += object ? "}" : "]";
  }

  Kind kind_;
  std::string str_;
  long long int_ = 0;
  double real_ = 0.0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `root` to `path` (and echoes it to stdout, matching the
/// other benchmarks' print-the-JSON convention). Returns false with a
/// message on stderr if the file cannot be written.
inline bool WriteBenchJson(const std::string& path, const Json& root) {
  std::string text = root.Dump();
  std::fputs(text.c_str(), stdout);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

}  // namespace wsqbench

#endif  // WSQ_BENCH_BENCH_JSON_H_
