// Regenerates the paper's plan-diagram figures (2–8) as EXPLAIN text:
// for each figure, the input (sequential) plan and the output of the
// §4.5 ReqSync placement algorithm. The async_rewriter_test suite
// asserts these shapes; this binary renders them for side-by-side
// comparison with the paper.

#include <cstdio>

#include "wsq/demo.h"

namespace {

void Show(wsq::DemoEnv& env, const char* figure, const char* sql,
          wsq::RewriteOptions options = wsq::RewriteOptions()) {
  std::printf("==== %s\n%s\n\n", figure, sql);
  auto sync_plan = env.db().ExplainSelect(sql, /*async=*/false);
  auto async_plan = env.db().ExplainSelect(sql, /*async=*/true, options);
  if (!sync_plan.ok() || !async_plan.ok()) {
    std::printf("error: %s\n",
                (!sync_plan.ok() ? sync_plan : async_plan)
                    .status()
                    .ToString()
                    .c_str());
    return;
  }
  std::printf("-- input plan\n%s\n-- after asynchronous iteration\n%s\n",
              sync_plan->c_str(), async_plan->c_str());
}

}  // namespace

int main() {
  wsq::DemoOptions options;
  options.corpus.num_documents = 500;  // plans only; tiny Web suffices
  options.latency = wsq::LatencyModel::Instant();
  wsq::DemoEnv env(options);

  // Table R for the Figure 7 query.
  WSQ_IGNORE_STATUS(env.db().Execute("CREATE TABLE R (X INT)"));
  WSQ_IGNORE_STATUS(env.db().Execute("INSERT INTO R VALUES (1), (2), (3)"));

  Show(env, "Figures 2 & 3: Sigs x WebCount near 'Knuth'",
       "Select * From Sigs, WebCount "
       "Where Name = T1 and T2 = 'Knuth' Order By Count Desc");

  Show(env, "Figure 4: Sigs x WebPages (Rank <= 3)",
       "Select * From Sigs, WebPages Where Name = T1 and Rank <= 3");

  Show(env,
       "Figures 5 & 6: Sigs x WebPages_AV x WebPages_Google "
       "(consolidated ReqSync)",
       "Select * From Sigs, WebPages_AV AV, WebPages_Google G "
       "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
       "G.Rank <= 3");

  Show(env,
       "Figure 6(b) ablation: insertion only (per-join ReqSyncs)",
       "Select * From Sigs, WebPages_AV AV, WebPages_Google G "
       "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
       "G.Rank <= 3",
       wsq::RewriteOptions{/*insert_only=*/true, /*consolidate=*/false,
                           /*rewrite_clashing_joins=*/true});

  Show(env, "Figure 7: cross-product with R between two WebCount joins",
       "Select * From Sigs, WebCount_AV AV, R, WebCount_Google G "
       "Where Name = AV.T1 and Name = G.T1");

  Show(env,
       "Figure 8: join on URL across two WebPages "
       "(join rewritten as selection over cross-product)",
       "Select S.URL From Sigs, WebPages S, CSFields, "
       "WebPages_Google C "
       "Where Sigs.Name = S.T1 and CSFields.Name = C.T1 and "
       "S.Rank <= 5 and C.Rank <= 5 and S.URL = C.URL");
  return 0;
}
