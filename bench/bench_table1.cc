// Reproduces the paper's Table 1 (§5): three query templates, two runs
// of eight instances each, executed with conventional sequential
// iteration and with asynchronous iteration.
//
// The search latency is simulated (default 25 ms vs the paper's ~1 s
// AltaVista round trips) so the whole table regenerates in about a
// minute; the reported *improvement factors* are the paper's result and
// are latency-scale independent as long as search time dominates local
// processing. Pass a latency in milliseconds as argv[1] to change the
// scale.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "data/datasets.h"
#include "wsq/demo.h"

namespace {

using wsq::DemoEnv;
using wsq::DemoOptions;
using wsq::StrFormat;
using wsq::TemplateConstants;

struct RunResult {
  double sync_secs = 0;
  double async_secs = 0;
  uint64_t async_calls = 0;
  uint64_t sync_calls = 0;
};

double RunOnce(DemoEnv& env, const std::string& sql, bool async,
               uint64_t* calls) {
  auto r = env.Run(sql, async);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  *calls = r->stats.external_calls;
  return r->stats.elapsed_micros * 1e-6;
}

RunResult RunInstances(DemoEnv& env,
                       const std::vector<std::string>& queries) {
  RunResult out;
  // Time all queries with asynchronous iteration, then all queries
  // sequentially (the paper's protocol, modulo its two-hour
  // anti-caching waits — our simulated engines do not cache).
  for (const std::string& sql : queries) {
    out.async_secs += RunOnce(env, sql, true, &out.async_calls);
  }
  for (const std::string& sql : queries) {
    out.sync_secs += RunOnce(env, sql, false, &out.sync_calls);
  }
  out.sync_secs /= static_cast<double>(queries.size());
  out.async_secs /= static_cast<double>(queries.size());
  return out;
}

std::vector<std::string> Template1(int run) {
  // Select Name, Count From States, WebCount
  // Where Name = T1 and WebCount.T2 = V1
  std::vector<std::string> out;
  const auto& c = TemplateConstants();
  for (int i = 0; i < 8; ++i) {
    size_t v1 = (run * 8 + i) % c.size();
    out.push_back(StrFormat(
        "Select Name, Count From States, WebCount "
        "Where Name = T1 and WebCount.T2 = '%s'",
        c[v1].c_str()));
  }
  return out;
}

std::vector<std::string> Template2(int run) {
  // Two searches per state: one WebCount and one WebPages (Rank <= 2).
  std::vector<std::string> out;
  const auto& c = TemplateConstants();
  for (int i = 0; i < 8; ++i) {
    size_t v1 = (run * 4 + i) % c.size();
    size_t v2 = (v1 + 8) % c.size();
    out.push_back(StrFormat(
        "Select Name, Count, URL, Rank "
        "From States, WebCount, WebPages "
        "Where Name = WebCount.T1 and WebCount.T2 = '%s' and "
        "Name = WebPages.T1 and WebPages.T2 = '%s' and "
        "WebPages.Rank <= 2",
        c[v1].c_str(), c[v2].c_str()));
  }
  return out;
}

std::vector<std::string> Template3(int run) {
  // Two engines per Sig (§4.4 / Figure 5), with the added constant V1.
  std::vector<std::string> out;
  const auto& c = TemplateConstants();
  for (int i = 0; i < 8; ++i) {
    size_t v1 = (run * 8 + i + 3) % c.size();
    out.push_back(StrFormat(
        "Select Name, AV.URL, G.URL "
        "From Sigs, WebPages_AV AV, WebPages_Google G "
        "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
        "G.Rank <= 3 and AV.T2 = '%s' and G.T2 = '%s'",
        c[v1].c_str(), c[v1].c_str()));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int latency_ms = 25;
  if (argc > 1) latency_ms = std::atoi(argv[1]);

  DemoOptions options;
  options.corpus.num_documents = 12000;
  options.latency =
      wsq::LatencyModel{latency_ms * 1000, latency_ms * 300, 0.0, 1.0};
  DemoEnv env(options);

  std::printf("Table 1 reproduction — synthetic search latency "
              "%d ms (paper: ~1 s live AltaVista/Google)\n\n",
              latency_ms);
  std::printf("%-26s %12s %12s %12s %8s %8s\n", "", "Sync (secs)",
              "Async (secs)", "Improvement", "SCalls", "ACalls");

  struct TemplateSpec {
    const char* name;
    std::vector<std::string> (*make)(int run);
  };
  TemplateSpec templates[] = {{"Template 1", Template1},
                              {"Template 2", Template2},
                              {"Template 3", Template3}};

  for (const TemplateSpec& t : templates) {
    std::printf("%s\n", t.name);
    for (int run = 0; run < 2; ++run) {
      RunResult r = RunInstances(env, t.make(run));
      std::printf(
          "  Run %d (8 queries)        %12.2f %12.2f %11.1fx %8llu %8llu\n",
          run + 1, r.sync_secs, r.async_secs, r.sync_secs / r.async_secs,
          (unsigned long long)r.sync_calls,
          (unsigned long long)r.async_calls);
    }
  }

  std::printf(
      "\nPaper reported (live Web, 1999): 23.13/3.88 = 6.0x and "
      "32.8/3.5 = 9.4x (T1);\n70.75/5.25 = 13.5x and 64.25/5.13 = "
      "12.5x (T2); 122.5/6.25 = 19.6x and 76.13/4.63 = 16.4x (T3).\n"
      "Expected shape: improvement grows with per-query call count "
      "(T1 < T2, T3).\nWhen SCalls < ACalls the asynchronous plan did "
      "optimistic work that\nsequential execution avoided (paper "
      "section 4.5.4).\n");
  return 0;
}
